//! Phase 2 of the paper's exploratory-mining architecture: forming rules.
//!
//! The paper computes constrained frequent set *pairs* as the phase-1
//! intermediate because "frequent sets represent a common denominator for
//! many kinds of rules of the form S ⇒ T" (§1); phase 2 turns selected
//! pairs into rules with their interestingness metrics. This module
//! implements the classic association-rule metrics over a
//! [`PairResult`](crate::pairs::PairResult): support and confidence of
//! `S ⇒ T` (and lift as a bonus), with the union supports counted in one
//! extra database scan.

use crate::optimizer::ExecutionOutcome;
use cfq_mining::{SupportCounter, TrieCounter};
use cfq_types::{Itemset, TransactionDb};

/// An association rule `S ⇒ T` with its metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The antecedent.
    pub antecedent: Itemset,
    /// The consequent.
    pub consequent: Itemset,
    /// Absolute support of `S ∪ T`.
    pub support: u64,
    /// `support(S ∪ T) / support(S)`.
    pub confidence: f64,
    /// `confidence / (support(T) / |D|)`.
    pub lift: f64,
}

/// Rule-formation thresholds.
#[derive(Clone, Copy, Debug)]
pub struct RuleConfig {
    /// Minimum absolute support of `S ∪ T`.
    pub min_support: u64,
    /// Minimum confidence in `[0, 1]`.
    pub min_confidence: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig { min_support: 1, min_confidence: 0.5 }
    }
}

/// Forms the rules `S ⇒ T` for every materialized valid pair of `outcome`,
/// counting each distinct `S ∪ T` once (single extra scan), and filters by
/// the thresholds. Rules are returned ordered by descending confidence,
/// then descending support.
pub fn form_rules(
    outcome: &ExecutionOutcome,
    db: &TransactionDb,
    cfg: &RuleConfig,
) -> Vec<Rule> {
    // Distinct unions across pairs (pairs often share unions, e.g. when S
    // and T overlap or repeat).
    let mut unions: Vec<Itemset> = outcome
        .pair_result
        .pairs
        .iter()
        .map(|&(si, ti)| {
            outcome.s_sets[si as usize].0.union(&outcome.t_sets[ti as usize].0)
        })
        .collect();
    let order: Vec<Itemset> = {
        unions.sort();
        unions.dedup();
        unions
    };
    let counts = TrieCounter.count(db, &order);
    let support_of = |u: &Itemset| -> u64 {
        let idx = order.binary_search(u).expect("union counted");
        counts[idx]
    };

    let n = db.len() as f64;
    let mut rules = Vec::new();
    for &(si, ti) in &outcome.pair_result.pairs {
        let (s, s_sup) = &outcome.s_sets[si as usize];
        let (t, t_sup) = &outcome.t_sets[ti as usize];
        let u = s.union(t);
        let support = support_of(&u);
        if support < cfg.min_support || *s_sup == 0 {
            continue;
        }
        let confidence = support as f64 / *s_sup as f64;
        if confidence < cfg.min_confidence {
            continue;
        }
        let lift = if *t_sup > 0 { confidence / (*t_sup as f64 / n) } else { 0.0 };
        rules.push(Rule {
            antecedent: s.clone(),
            consequent: t.clone(),
            support,
            confidence,
            lift,
        });
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Optimizer, QueryEnv};
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    fn setup() -> (TransactionDb, cfq_types::Catalog) {
        let db = TransactionDb::from_u32(
            4,
            &[&[0, 1, 2], &[0, 1], &[1, 2, 3], &[0, 2, 3], &[0, 1, 2, 3], &[0, 1, 2]],
        );
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        (db, b.build())
    }

    #[test]
    fn metrics_match_hand_computation() {
        let (db, catalog) = setup();
        let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &catalog)
            .unwrap();
        let env = QueryEnv::new(&db, &catalog, 2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        let rules = form_rules(&out, &db, &RuleConfig { min_support: 1, min_confidence: 0.0 });
        assert_eq!(rules.len(), out.pair_result.count as usize);
        for r in &rules {
            let u = r.antecedent.union(&r.consequent);
            assert_eq!(r.support, db.support(&u), "union support for {u}");
            let s_sup = db.support(&r.antecedent);
            assert!((r.confidence - r.support as f64 / s_sup as f64).abs() < 1e-12);
            assert!(r.confidence <= 1.0 + 1e-12);
        }
        // Ordered by descending confidence.
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn thresholds_filter() {
        let (db, catalog) = setup();
        let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &catalog)
            .unwrap();
        let env = QueryEnv::new(&db, &catalog, 2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        let all = form_rules(&out, &db, &RuleConfig { min_support: 1, min_confidence: 0.0 });
        let strict = form_rules(&out, &db, &RuleConfig { min_support: 3, min_confidence: 0.9 });
        assert!(strict.len() < all.len());
        for r in &strict {
            assert!(r.support >= 3);
            assert!(r.confidence >= 0.9);
        }
    }

    #[test]
    fn lift_sanity() {
        let (db, catalog) = setup();
        let q = bind_query(&parse_query("freq(S) & freq(T)").unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(&db, &catalog, 2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        let rules = form_rules(&out, &db, &RuleConfig { min_support: 1, min_confidence: 0.0 });
        // Lift of S => T where T = S-ish strongly associated items must be
        // positive; spot check finiteness.
        assert!(rules.iter().all(|r| r.lift.is_finite() && r.lift >= 0.0));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::optimizer::{Optimizer, QueryEnv};
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Rule metrics recomputed from raw supports on random databases.
    #[test]
    fn randomized_metric_consistency() {
        let mut rng = StdRng::seed_from_u64(31337);
        for _ in 0..15 {
            let n_items = rng.gen_range(3..7);
            let txs: Vec<Vec<cfq_types::ItemId>> = (0..rng.gen_range(4..20))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| cfq_types::ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let db = TransactionDb::new(n_items, txs).unwrap();
            let mut b = CatalogBuilder::new(n_items);
            b.num_attr("Price", (0..n_items).map(|i| (i + 1) as f64).collect()).unwrap();
            let cat = b.build();
            let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
            let env = QueryEnv::new(&db, &cat, rng.gen_range(1..3));
            let out = Optimizer::default().evaluate(&q, &env).unwrap();
            let rules =
                form_rules(&out, &db, &RuleConfig { min_support: 1, min_confidence: 0.0 });
            for r in &rules {
                let u = r.antecedent.union(&r.consequent);
                assert_eq!(r.support, db.support(&u));
                let a_sup = db.support(&r.antecedent) as f64;
                assert!((r.confidence - r.support as f64 / a_sup).abs() < 1e-12);
                let t_frac = db.support(&r.consequent) as f64 / db.len() as f64;
                assert!((r.lift - r.confidence / t_frac).abs() < 1e-9);
            }
        }
    }
}

//! The CFQ query optimizer (§6, Figure 7).
//!
//! Given a bound CFQ, the optimizer:
//!
//! 1. separates 1-var and 2-var constraints (done at binding);
//! 2. splits the 2-var constraints into quasi-succinct (`C_qs`) and not
//!    (`C_nqs`); induces weaker quasi-succinct constraints from `C_nqs`
//!    (Figure 4) and adds them to `C_qs`;
//! 3. after the first counting iteration, reduces every constraint in
//!    `C_qs` to succinct 1-var pruning conditions (Figures 2–3) and pushes
//!    them into the CAP lattices;
//! 4. for `C_nqs` constraints bounded by a `sum`, attaches `J^k_max`
//!    iterative pruning (§5.2) to the bounded lattice, fed by the bounding
//!    lattice's levels as the two lattices are computed *dovetailed* over
//!    shared database scans;
//! 5. forms the final pairs, re-verifying every original 2-var constraint
//!    (which also absorbs the non-tight and induced-weaker looseness).
//!
//! Setting all three `push_*` flags to `false` yields exactly the Apriori⁺
//! baseline; `push_one_var` alone yields the CAP-1-var strategy the paper
//! compares against in §7.2.

use crate::cap::{LatticeConfig, LatticeRun};
use crate::jkmax::{CountSeries, VSeries};
use crate::pairs::{compact_used, form_pairs, form_pairs_with, PairResult};
use cfq_constraints::{
    classify_two, eval_all_one, induce_weaker, reduce_quasi_succinct, Agg, BoundQuery, CmpOp,
    OneVar, SuccinctForm, TwoVar, Var,
};
use cfq_mining::backend;
use cfq_mining::counter::count_supports_with;
use cfq_mining::trim::{trim_db_recorded, LiveSet};
use cfq_mining::{
    CountingBackend, CountingRun, ParallelTrieCounter, ScanStats, ShardedRun, SupportCounter,
    WorkStats,
};
use cfq_types::{AttrId, Catalog, CfqError, ItemId, Itemset, Result, TransactionDb};

/// How a 2-var constraint ends up being handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrategyKind {
    /// Reduced to succinct 1-var conditions after level 1 (Figures 2–3).
    QuasiSuccinct,
    /// A weaker quasi-succinct constraint was induced and reduced (Fig. 4).
    InducedWeaker,
    /// `J^k_max` iterative pruning attached (§5.2).
    JkmaxIterative,
    /// Only verified at pair formation.
    FinalVerifyOnly,
}

/// Execution environment of a query: data, domains, thresholds.
pub struct QueryEnv<'a> {
    /// The transaction database (shared by both variables).
    pub db: &'a TransactionDb,
    /// The attribute catalog.
    pub catalog: &'a Catalog,
    /// Domain of `S` (empty = all items).
    pub s_universe: Vec<ItemId>,
    /// Domain of `T` (empty = all items).
    pub t_universe: Vec<ItemId>,
    /// Absolute minimum support for `S`.
    pub s_min_support: u64,
    /// Absolute minimum support for `T`.
    pub t_min_support: u64,
    /// Level cap (0 = unbounded).
    pub max_level: usize,
    /// Materialization cap for pairs (`None` = materialize all).
    pub max_pairs: Option<usize>,
    /// When `false`, skip pair formation entirely: the outcome reports the
    /// raw frequent valid-per-1-var sets and an empty pair result. Used by
    /// benchmarks that compare mining work only.
    pub form_pairs: bool,
    /// Support-counting worker threads: 1 = sequential (default), 0 = one
    /// per core, n = exactly n. Counting shards transactions; results are
    /// bit-identical to sequential.
    pub counting_threads: usize,
    /// Per-level database reduction (default on): between levels the
    /// executor drops items outside the upcoming candidates — for the
    /// dovetailed shared scan, outside the *union* of both lattices'
    /// candidates — and rows left shorter than the smallest candidate.
    /// Answers are provably identical with trimming on or off.
    pub trim: bool,
    /// Support-counting backend (default `Horizontal`): horizontal row
    /// scans, a vertical tidset/bitmap index, or the `Auto` per-level
    /// crossover. Answers are bit-identical across backends.
    pub backend: CountingBackend,
    /// Horizontal database shards for counting (1 = unsharded, the
    /// default). With `n > 1` the store is split into `n` row ranges,
    /// counted (and trimmed) independently, and partial counts are merged
    /// at a per-level barrier. Answers are bit-identical to unsharded —
    /// support is additive over a row partition.
    pub shards: usize,
}

impl<'a> QueryEnv<'a> {
    /// Environment over the full item universe with one threshold.
    pub fn new(db: &'a TransactionDb, catalog: &'a Catalog, min_support: u64) -> Self {
        QueryEnv {
            db,
            catalog,
            s_universe: Vec::new(),
            t_universe: Vec::new(),
            s_min_support: min_support,
            t_min_support: min_support,
            max_level: 0,
            max_pairs: None,
            form_pairs: true,
            counting_threads: 1,
            trim: true,
            backend: CountingBackend::Horizontal,
            shards: 1,
        }
    }

    /// Enables multi-threaded support counting (0 = one worker per core).
    pub fn with_counting_threads(mut self, threads: usize) -> Self {
        self.counting_threads = threads;
        self
    }

    /// Selects the support-counting backend.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables per-level database reduction.
    pub fn with_trim(mut self, trim: bool) -> Self {
        self.trim = trim;
        self
    }

    /// Shards counting over `shards` horizontal row ranges (1 = unsharded).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Disables final pair formation (mining-only benchmarks).
    pub fn without_pair_formation(mut self) -> Self {
        self.form_pairs = false;
        self
    }

    /// Sets the S domain.
    pub fn with_s_universe(mut self, u: Vec<ItemId>) -> Self {
        self.s_universe = u;
        self
    }

    /// Sets the T domain.
    pub fn with_t_universe(mut self, u: Vec<ItemId>) -> Self {
        self.t_universe = u;
        self
    }

    /// Sets distinct thresholds.
    pub fn with_supports(mut self, s: u64, t: u64) -> Self {
        self.s_min_support = s;
        self.t_min_support = t;
        self
    }

    /// Caps the lattice depth.
    pub fn with_max_level(mut self, max_level: usize) -> Self {
        self.max_level = max_level;
        self
    }

    fn universe(&self, var: Var) -> Vec<ItemId> {
        let u = match var {
            Var::S => &self.s_universe,
            Var::T => &self.t_universe,
        };
        if u.is_empty() {
            (0..self.db.n_items() as u32).map(ItemId).collect()
        } else {
            u.clone()
        }
    }

    fn min_support(&self, var: Var) -> u64 {
        match var {
            Var::S => self.s_min_support,
            Var::T => self.t_min_support,
        }
    }
}

/// What an iterative bound task prunes with: a `sum(T.B)` bound (the
/// paper's §5.2) or a `count(distinct T.B)` bound (the 2-var count
/// extension).
#[derive(Clone, Debug)]
enum BoundTarget {
    /// `bounded_agg(S.attr) op V`, `V` from the partner's sum series.
    Sum { bounded_agg: Agg, bounded_attr: AttrId, source_attr: AttrId },
    /// `count(S.attr) op C`, `C` from the partner's count series.
    Count { bounded_attr: Option<AttrId>, source_attr: Option<AttrId> },
}

/// An iterative pruning task: the `pruned` variable's candidates are
/// bounded through the partner lattice's evolving series.
#[derive(Clone, Debug)]
struct JkTask {
    pruned: Var,
    /// `Le` or `Lt`, oriented as `bounded(pruned) op BOUND`.
    op: CmpOp,
    target: BoundTarget,
}

impl JkTask {
    /// Whether the per-candidate bound check is anti-monotone (pushable
    /// during the run, not just at output).
    fn is_am(&self, catalog: &Catalog) -> bool {
        match &self.target {
            BoundTarget::Sum { bounded_agg, bounded_attr, .. } => match bounded_agg {
                Agg::Max => true,
                Agg::Sum => catalog
                    .column_min_num(*bounded_attr)
                    .map(|m| m >= 0.0)
                    .unwrap_or(true),
                Agg::Min | Agg::Avg => false,
            },
            // count(X) ≤ c is always anti-monotone.
            BoundTarget::Count { .. } => true,
        }
    }

    fn condition(&self, value: f64) -> OneVar {
        match &self.target {
            BoundTarget::Sum { bounded_agg, bounded_attr, .. } => OneVar::AggCmp {
                var: self.pruned,
                agg: *bounded_agg,
                attr: *bounded_attr,
                op: self.op,
                value,
            },
            BoundTarget::Count { bounded_attr, .. } => OneVar::CountCmp {
                var: self.pruned,
                attr: *bounded_attr,
                op: self.op,
                value,
            },
        }
    }

    fn make_series(&self, source_l1: &[ItemId], catalog: &Catalog) -> Series {
        match &self.target {
            BoundTarget::Sum { source_attr, .. } => {
                Series::Sum(VSeries::from_l1(source_l1, *source_attr, catalog))
            }
            BoundTarget::Count { source_attr, .. } => {
                Series::Count(CountSeries::from_l1(source_l1, *source_attr, catalog))
            }
        }
    }
}

/// Either bound series, unified for the executor.
enum Series {
    Sum(VSeries),
    Count(CountSeries),
}

impl Series {
    fn current(&self) -> f64 {
        match self {
            Series::Sum(v) => v.current(),
            Series::Count(c) => c.current(),
        }
    }

    fn update(&mut self, level_sets: &[Itemset], k: usize, catalog: &Catalog) {
        match self {
            Series::Sum(v) => v.update(level_sets, k, catalog),
            Series::Count(c) => c.update(level_sets, k, catalog),
        }
    }

    fn history(&self) -> &[(usize, f64)] {
        match self {
            Series::Sum(v) => v.history(),
            Series::Count(c) => c.history(),
        }
    }
}

/// Public summary of an iterative bound task (the executable details stay
/// in the private `JkTask`): enough for static auditing of the §5.2
/// obligations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JkSummary {
    /// The variable whose candidates the task prunes.
    pub pruned: Var,
    /// The comparison direction, oriented `bounded(pruned) op BOUND`.
    pub op: CmpOp,
}

/// One step of the optimizer's rewrite trace: how a single original 2-var
/// constraint was handled, with everything a static auditor needs to
/// re-check the paper's per-rewrite obligations (Figs. 2–4, §5.2).
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// The original 2-var constraint.
    pub constraint: TwoVar,
    /// The strategy the optimizer chose for it.
    pub strategy: StrategyKind,
    /// Constraints sent to the quasi-succinct reduction on its behalf: the
    /// constraint itself for [`StrategyKind::QuasiSuccinct`], the induced
    /// weaker constraints for [`StrategyKind::InducedWeaker`].
    pub pushed: Vec<TwoVar>,
    /// `J^k_max` iterative pruning tasks attached to this constraint.
    pub jk: Vec<JkSummary>,
    /// Whether the constraint is re-evaluated at pair formation. Every
    /// plan the optimizer emits sets this; a plan without it loses answers
    /// whenever an upstream rewrite was not tight.
    pub reverified: bool,
}

/// The optimizer's rewrite trace — what [`Optimizer::build_plan`] decided, in a
/// form `cfq-audit` can walk without executing anything. Fields are public
/// so tests can doctor a trace (e.g. clear a `reverified` flag) and check
/// that the auditor rejects it.
#[derive(Clone, Debug, Default)]
pub struct PlanTrace {
    /// 1-var constraints pushed on the S side.
    pub s_one: Vec<OneVar>,
    /// 1-var constraints pushed on the T side.
    pub t_one: Vec<OneVar>,
    /// One rewrite node per original 2-var constraint, in query order.
    pub nodes: Vec<TraceNode>,
    /// The 2-var constraints checked during final pair formation.
    pub final_two: Vec<TwoVar>,
}

/// The optimizer's output plan for one CFQ.
#[derive(Clone, Debug)]
pub struct CfqPlan {
    s_one: Vec<OneVar>,
    t_one: Vec<OneVar>,
    /// Quasi-succinct constraints to reduce after level 1 (original QS plus
    /// induced weaker ones).
    qs_two: Vec<TwoVar>,
    /// All original 2-var constraints (verified at pair formation).
    final_two: Vec<TwoVar>,
    jk_tasks: Vec<JkTask>,
    /// `(constraint, strategy)` per original 2-var constraint.
    strategies: Vec<(TwoVar, StrategyKind)>,
    /// The auditable rewrite trace mirroring the fields above.
    trace: PlanTrace,
}

impl CfqPlan {
    /// Human-readable plan description (the optimizer's EXPLAIN).
    pub fn explain(&self, catalog: &Catalog) -> String {
        let mut out = String::from("CFQ plan\n========\n");
        out.push_str(&format!(
            "1-var constraints: {} on S, {} on T (pushed via CAP)\n",
            self.s_one.len(),
            self.t_one.len()
        ));
        for c in &self.s_one {
            out.push_str(&format!("  [S] {}{}\n", c.display(catalog), selectivity_note(c, catalog)));
        }
        for c in &self.t_one {
            out.push_str(&format!("  [T] {}{}\n", c.display(catalog), selectivity_note(c, catalog)));
        }
        out.push_str(&format!("2-var constraints: {}\n", self.strategies.len()));
        for (c, s) in &self.strategies {
            let how = match s {
                StrategyKind::QuasiSuccinct => {
                    "quasi-succinct: reduced to succinct 1-var conditions after level 1"
                }
                StrategyKind::InducedWeaker => {
                    "not quasi-succinct: weaker constraint induced (Fig. 4) and reduced"
                }
                StrategyKind::JkmaxIterative => {
                    "sum-bounded: J^k_max iterative pruning attached (Figs. 5-6)"
                }
                StrategyKind::FinalVerifyOnly => "verified at pair formation only",
            };
            out.push_str(&format!("  {}  ->  {how}\n", c.display(catalog)));
        }
        out.push_str(&format!(
            "final verification: {} 2-var constraint(s) at pair formation\n",
            self.final_two.len()
        ));
        out
    }

    /// The strategies chosen per original 2-var constraint.
    pub fn strategies(&self) -> &[(TwoVar, StrategyKind)] {
        &self.strategies
    }

    /// The auditable rewrite trace of this plan.
    pub fn trace(&self) -> &PlanTrace {
        &self.trace
    }
}

/// Where a lattice served during one execution came from. One-shot
/// `Optimizer` runs always mine cold; the session engine stamps cache
/// provenance so EXPLAIN output and benchmarks can tell reuse from work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LatticeSource {
    /// Mined from the transaction database during this execution.
    #[default]
    MinedCold,
    /// Served from a session engine's lattice cache without any scan.
    Cached,
    /// Served from the cache after an in-place FUP upgrade at an epoch
    /// swap (`Engine::append`).
    FupUpgraded,
    /// Served by attaching to another query's in-flight mining of the same
    /// lattice (the scheduler's single-flight/batch path): this query
    /// waited for that pass instead of scanning itself.
    Coalesced,
}

impl LatticeSource {
    /// Human-readable provenance label used by EXPLAIN output.
    pub fn describe(self) -> &'static str {
        match self {
            LatticeSource::MinedCold => "freshly mined (cold)",
            LatticeSource::Cached => "cache hit (reused mined lattice)",
            LatticeSource::FupUpgraded => "cache hit (FUP-upgraded at epoch swap)",
            LatticeSource::Coalesced => "coalesced (shared an in-flight mining)",
        }
    }
}

/// Cache provenance of one execution outcome: where each lattice came from
/// and whether the plan itself was reused.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OutcomeProvenance {
    /// Where the S lattice came from.
    pub s_lattice: LatticeSource,
    /// Where the T lattice came from.
    pub t_lattice: LatticeSource,
    /// Whether the plan was served from a plan cache.
    pub plan_cached: bool,
}

impl OutcomeProvenance {
    /// The EXPLAIN lines describing cache provenance (appended to
    /// [`CfqPlan::explain`] by `Session::explain`).
    pub fn render(&self) -> String {
        format!(
            "lattice provenance:\n  [S] {}\n  [T] {}\n  plan: {}\n",
            self.s_lattice.describe(),
            self.t_lattice.describe(),
            if self.plan_cached { "plan cache hit" } else { "planned this run" },
        )
    }
}

/// Result of executing a plan.
#[derive(Clone, Debug)]
pub struct ExecutionOutcome {
    /// Frequent valid S-sets with supports.
    pub s_sets: Vec<(Itemset, u64)>,
    /// Frequent valid T-sets with supports.
    pub t_sets: Vec<(Itemset, u64)>,
    /// The valid pairs.
    pub pair_result: PairResult,
    /// S-lattice work counters.
    pub s_stats: WorkStats,
    /// T-lattice work counters.
    pub t_stats: WorkStats,
    /// Total database scans (a dovetailed scan counts once).
    pub db_scans: u64,
    /// Scan volume and trim accounting across the whole execution: how many
    /// rows/items each scan actually touched (trim passes are tracked
    /// separately and do not count as scans).
    pub scan: ScanStats,
    /// The `V^k` histories per pruned variable (empty without `J^k_max`).
    pub v_histories: Vec<(Var, Vec<(usize, f64)>)>,
    /// Cache provenance: where each lattice came from. One-shot runs are
    /// always [`LatticeSource::MinedCold`] on both sides.
    pub provenance: OutcomeProvenance,
}

/// The CFQ query optimizer. Flags select the strategy family; defaults are
/// the full optimizer of Figure 7.
///
/// The type plays two roles: a *flag set* naming a strategy family
/// (what `Session::query(..).strategy(..)` and `QueryRequest` carry —
/// use the [`Strategy`] alias there) and the *executor* of the one-shot
/// paper pipeline ([`Optimizer::build_plan`] / [`Optimizer::evaluate`] /
/// [`Optimizer::execute_plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Optimizer {
    /// Push 1-var constraints through CAP (off = check at output, as
    /// Apriori⁺ does).
    pub push_one_var: bool,
    /// Reduce/induce 2-var constraints into the lattices.
    pub push_two_var: bool,
    /// Attach `J^k_max` iterative pruning for sum-bounded constraints.
    pub use_jkmax: bool,
    /// Compute the two lattices dovetailed over shared scans (off = one
    /// lattice after the other; the bounding lattice runs first so its
    /// exact bound series is available — the paper's §5.2 alternative).
    pub dovetail: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer { push_one_var: true, push_two_var: true, use_jkmax: true, dovetail: true }
    }
}

/// The preferred name for [`Optimizer`] used *as a strategy-family flag
/// set* (in `QueryRequest`, `Session::query(..).strategy(..)`, and the
/// wire protocol) rather than as the one-shot executor. Same type, one
/// name per role.
pub type Strategy = Optimizer;

impl Optimizer {
    /// The Apriori⁺ baseline configuration.
    pub fn apriori_plus() -> Self {
        Optimizer { push_one_var: false, push_two_var: false, use_jkmax: false, dovetail: true }
    }

    /// The CAP configuration that optimizes only 1-var constraints (the
    /// middle curve of Fig. 8(b)).
    pub fn cap_one_var() -> Self {
        Optimizer { push_one_var: true, push_two_var: false, use_jkmax: false, dovetail: true }
    }

    /// Resolves a strategy family by its wire/CLI name: `full`, `cap1`, or
    /// `apriori+` (alias `naive`). `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "full" => Some(Optimizer::default()),
            "cap1" => Some(Optimizer::cap_one_var()),
            "apriori+" | "naive" => Some(Optimizer::apriori_plus()),
            _ => None,
        }
    }

    /// The wire/CLI name of this flag set, when it matches a named family
    /// (`full`, `cap1`, `apriori+`); `None` for hand-rolled flag
    /// combinations.
    pub fn name(&self) -> Option<&'static str> {
        if *self == Optimizer::default() {
            Some("full")
        } else if *self == Optimizer::cap_one_var() {
            Some("cap1")
        } else if *self == Optimizer::apriori_plus() {
            Some("apriori+")
        } else {
            None
        }
    }

    /// Builds the plan from the catalog alone — planning never touches the
    /// data, which is what lets `cfq audit` verify plans statically and the
    /// session engine cache plans across database epochs.
    pub fn build_plan(&self, query: &BoundQuery, catalog: &Catalog) -> CfqPlan {
        let s_one: Vec<OneVar> = query.one_var_for(Var::S).cloned().collect();
        let t_one: Vec<OneVar> = query.one_var_for(Var::T).cloned().collect();
        let final_two = query.two_var.clone();
        let mut qs_two = Vec::new();
        let mut jk_tasks = Vec::new();
        let mut strategies = Vec::new();
        let mut nodes = Vec::new();

        for c in &query.two_var {
            let mut kind = StrategyKind::FinalVerifyOnly;
            let mut pushed = Vec::new();
            let mut jk = Vec::new();
            if classify_two(c).quasi_succinct {
                qs_two.push(c.clone());
                pushed.push(c.clone());
                kind = StrategyKind::QuasiSuccinct;
            } else {
                let weaker = induce_weaker(c, catalog);
                if !weaker.is_empty() {
                    pushed.extend(weaker.iter().cloned());
                    qs_two.extend(weaker);
                    kind = StrategyKind::InducedWeaker;
                }
                for task in jk_tasks_for(c, catalog) {
                    jk.push(JkSummary { pruned: task.pruned, op: task.op });
                    jk_tasks.push(task);
                    kind = StrategyKind::JkmaxIterative;
                }
            }
            strategies.push((c.clone(), kind));
            nodes.push(TraceNode {
                constraint: c.clone(),
                strategy: kind,
                pushed,
                jk,
                reverified: final_two.contains(c),
            });
        }

        let trace = PlanTrace {
            s_one: s_one.clone(),
            t_one: t_one.clone(),
            nodes,
            final_two: final_two.clone(),
        };
        CfqPlan { s_one, t_one, qs_two, final_two, jk_tasks, strategies, trace }
    }

    /// Plans and executes in one step, reporting environment problems as
    /// typed errors instead of panicking.
    pub fn evaluate(&self, query: &BoundQuery, env: &QueryEnv<'_>) -> Result<ExecutionOutcome> {
        let plan = self.build_plan(query, env.catalog);
        self.execute_plan(&plan, env)
    }

    /// Executes a plan. Fails with [`CfqError::Engine`] when the catalog
    /// covers fewer items than the database references — an inconsistent
    /// environment that would otherwise surface as an opaque index panic
    /// deep inside constraint evaluation.
    pub fn execute_plan(&self, plan: &CfqPlan, env: &QueryEnv<'_>) -> Result<ExecutionOutcome> {
        if env.catalog.n_items() < env.db.n_items() {
            return Err(CfqError::Engine(format!(
                "catalog covers {} items but the database references up to {}",
                env.catalog.n_items(),
                env.db.n_items()
            )));
        }
        let catalog = env.catalog;
        let mut db_scans = 0u64;
        let mut scan = ScanStats::default();
        // Backend state shared by every level of both lattices: a vertical
        // index is inverted once (accounted as one database scan) and then
        // serves both sides scan-free — dovetailing taken to its limit.
        let mut crun = CountingRun::new(env.db, env.backend);
        // Sharded counting substrate (`--shards N`): partial counts per
        // row range, merged at each level. Accounting is shard-transparent
        // (one scan/extent/trim record per level with summed volumes), so
        // every path below charges identically with or without it.
        let mut sharded: Option<ShardedRun> =
            (env.shards > 1).then(|| ShardedRun::new(env.db, env.shards, env.backend));
        let count_vertical = |crun: &mut CountingRun<'_>,
                                  sharded: &mut Option<ShardedRun>,
                                  resolved: cfq_mining::ResolvedBackend,
                                  cands: &[Itemset],
                                  level: usize,
                                  db_scans: &mut u64,
                                  scan: &mut ScanStats|
         -> Vec<u64> {
            if let Some(s) = sharded {
                return s.count_vertical(resolved, cands, level, db_scans, scan);
            }
            let mut vstats = WorkStats::new();
            let counts = crun.count_vertical(resolved, cands, level, &mut vstats);
            *db_scans += vstats.db_scans;
            scan.absorb(&vstats.scan);
            counts
        };

        let make_run = |var: Var| {
            let pushed: Vec<OneVar> = if self.push_one_var {
                match var {
                    Var::S => plan.s_one.clone(),
                    Var::T => plan.t_one.clone(),
                }
            } else {
                Vec::new()
            };
            let form = SuccinctForm::compile(&pushed, catalog);
            LatticeRun::new(
                LatticeConfig {
                    var,
                    universe: env.universe(var),
                    min_support: env.min_support(var),
                    max_level: env.max_level,
                },
                form,
                catalog,
            )
        };
        let mut s_run = make_run(Var::S);
        let mut t_run = make_run(Var::T);

        // ---- Level 1 (always over the full database) ----
        let cs = s_run.next_candidates();
        let ct = t_run.next_candidates();
        if self.dovetail {
            if !(cs.is_empty() && ct.is_empty()) {
                let resolved = match &sharded {
                    Some(s) => s.resolve(1, cs.len() + ct.len(), &scan),
                    None => crun.resolve(1, cs.len() + ct.len(), &scan),
                };
                backend::metric_selected(resolved.name());
                if resolved.is_vertical() {
                    if !cs.is_empty() {
                        let counts = count_vertical(
                            &mut crun, &mut sharded, resolved, &cs, 1, &mut db_scans, &mut scan,
                        );
                        s_run.absorb_counts(&counts);
                    }
                    if !ct.is_empty() {
                        let counts = count_vertical(
                            &mut crun, &mut sharded, resolved, &ct, 1, &mut db_scans, &mut scan,
                        );
                        t_run.absorb_counts(&counts);
                    }
                } else {
                    let counts = match &mut sharded {
                        Some(s) => s.count_batches(&[&cs, &ct], 1, None, &mut db_scans, &mut scan),
                        None => {
                            let counts =
                                count_supports_with(env.db, &[&cs, &ct], env.counting_threads);
                            db_scans += 1;
                            scan.record_extent(1, env.db.len() as u64, env.db.total_items() as u64);
                            counts
                        }
                    };
                    if !cs.is_empty() {
                        s_run.absorb_counts(&counts[0]);
                    }
                    if !ct.is_empty() {
                        t_run.absorb_counts(&counts[1]);
                    }
                }
            }
        } else {
            for (run, cands) in [(&mut s_run, &cs), (&mut t_run, &ct)] {
                if !cands.is_empty() {
                    let resolved = match &sharded {
                        Some(s) => s.resolve(1, cands.len(), &scan),
                        None => crun.resolve(1, cands.len(), &scan),
                    };
                    backend::metric_selected(resolved.name());
                    let counts = if resolved.is_vertical() {
                        count_vertical(
                            &mut crun, &mut sharded, resolved, cands, 1, &mut db_scans, &mut scan,
                        )
                    } else if let Some(s) = &mut sharded {
                        s.count(cands, 1, None, &mut db_scans, &mut scan)
                    } else {
                        let counts = ParallelTrieCounter { threads: env.counting_threads }
                            .count(env.db, cands);
                        db_scans += 1;
                        scan.record_extent(1, env.db.len() as u64, env.db.total_items() as u64);
                        counts
                    };
                    run.absorb_counts(&counts);
                }
            }
        }

        let l1s = s_run.l1_items();
        let l1t = t_run.l1_items();

        // ---- Quasi-succinct reduction (the Fig. 7 "Reduction" box) ----
        if self.push_two_var {
            let mut s_conds = Vec::new();
            let mut t_conds = Vec::new();
            for c in &plan.qs_two {
                if let Some(r) = reduce_quasi_succinct(c, &l1s, &l1t, catalog) {
                    s_conds.extend(r.s_conds);
                    t_conds.extend(r.t_conds);
                }
            }
            if !s_conds.is_empty() {
                s_run.push_conditions(&s_conds);
            }
            if !t_conds.is_empty() {
                t_run.push_conditions(&t_conds);
            }
        }

        // ---- J^k_max state ----
        let mut jk_states: Vec<JkState> = if self.use_jkmax {
            plan.jk_tasks
                .iter()
                .map(|task| {
                    let (source_l1, source_run) = match task.pruned {
                        Var::S => (&l1t, &t_run),
                        Var::T => (&l1s, &s_run),
                    };
                    JkState {
                        series: task.make_series(source_l1, catalog),
                        updatable: source_run.form().required_groups.is_empty(),
                        task: task.clone(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let jk_am_conds = |states: &[JkState], var: Var, catalog: &Catalog| -> Vec<OneVar> {
            states
                .iter()
                .filter(|st| st.task.pruned == var && st.task.is_am(catalog))
                .map(|st| st.task.condition(st.series.current()))
                .collect()
        };

        // ---- Levels ≥ 2 ----
        // Per-level database reduction: only items inside the upcoming
        // candidates can still produce a count, and only rows keeping at
        // least the smallest candidate's length can contain one, so both
        // are dropped before the scan. Candidate sets only ever draw from
        // earlier frequent sets, so the live set shrinks monotonically and
        // re-trimming the already-trimmed database stays exact.
        let mut trimmed: Option<TransactionDb> = None;
        if self.dovetail {
            loop {
                s_run.set_extra_am(jk_am_conds(&jk_states, Var::S, catalog));
                t_run.set_extra_am(jk_am_conds(&jk_states, Var::T, catalog));
                let (s_before, t_before) = (s_run.levels_done(), t_run.levels_done());
                let cs = s_run.next_candidates();
                let ct = t_run.next_candidates();
                if cs.is_empty() && ct.is_empty() {
                    break;
                }
                let level = if cs.is_empty() { t_before + 1 } else { s_before + 1 };
                let resolved = match &sharded {
                    Some(s) => s.resolve(level, cs.len() + ct.len(), &scan),
                    None => crun.resolve(level, cs.len() + ct.len(), &scan),
                };
                backend::metric_selected(resolved.name());
                if resolved.is_vertical() {
                    // Vertical levels count off the shared index: no scan,
                    // no trim (an auto crossover back to horizontal trims
                    // from wherever the working database last stood).
                    if !cs.is_empty() {
                        let counts = count_vertical(
                            &mut crun, &mut sharded, resolved, &cs, level, &mut db_scans,
                            &mut scan,
                        );
                        s_run.absorb_counts(&counts);
                    }
                    if !ct.is_empty() {
                        let counts = count_vertical(
                            &mut crun, &mut sharded, resolved, &ct, level, &mut db_scans,
                            &mut scan,
                        );
                        t_run.absorb_counts(&counts);
                    }
                } else {
                    // The shared scan serves both lattices, so trimming must
                    // keep the *union* of their live items: an item dead for
                    // S may appear in T's candidates and vice versa.
                    let live = env.trim.then(|| {
                        LiveSet::from_items(
                            env.db.n_items(),
                            cs.iter().chain(ct.iter()).flat_map(|c| c.iter()),
                        )
                    });
                    let min_len = [&cs, &ct]
                        .into_iter()
                        .filter(|b| !b.is_empty())
                        .map(|b| b[0].len())
                        .min()
                        .expect("at least one batch is non-empty");
                    let counts = match &mut sharded {
                        Some(s) => s.count_batches(
                            &[&cs, &ct],
                            level,
                            live.as_ref().map(|l| (l, min_len)),
                            &mut db_scans,
                            &mut scan,
                        ),
                        None => {
                            if let Some(live) = &live {
                                let r = trim_db_recorded(
                                    trimmed.as_ref().unwrap_or(env.db),
                                    live,
                                    min_len,
                                    &mut scan,
                                );
                                trimmed = Some(r.db);
                            }
                            let cur = trimmed.as_ref().unwrap_or(env.db);
                            let counts =
                                count_supports_with(cur, &[&cs, &ct], env.counting_threads);
                            db_scans += 1;
                            scan.record_extent(level, cur.len() as u64, cur.total_items() as u64);
                            counts
                        }
                    };
                    if !cs.is_empty() {
                        s_run.absorb_counts(&counts[0]);
                    }
                    if !ct.is_empty() {
                        t_run.absorb_counts(&counts[1]);
                    }
                }
                update_jk(&mut jk_states, &s_run, &t_run, s_before, t_before, catalog);
            }
        } else {
            // Sequential: the bounding lattice first (so the bound series is
            // complete before the bounded lattice runs), then the other.
            let t_first = jk_states.iter().any(|st| st.task.pruned == Var::S)
                || jk_states.is_empty();
            let order: [Var; 2] = if t_first { [Var::T, Var::S] } else { [Var::S, Var::T] };
            for var in order {
                // Each lattice trims for its own candidates only; start it
                // from the full database again.
                trimmed = None;
                if let Some(s) = &mut sharded {
                    s.reset_trim();
                }
                loop {
                    let run = match var {
                        Var::S => &mut s_run,
                        Var::T => &mut t_run,
                    };
                    run.set_extra_am(jk_am_conds(&jk_states, var, catalog));
                    let before = run.levels_done();
                    let cands = run.next_candidates();
                    if cands.is_empty() {
                        break;
                    }
                    let resolved = match &sharded {
                        Some(s) => s.resolve(before + 1, cands.len(), &scan),
                        None => crun.resolve(before + 1, cands.len(), &scan),
                    };
                    backend::metric_selected(resolved.name());
                    let counts = if resolved.is_vertical() {
                        count_vertical(
                            &mut crun, &mut sharded, resolved, &cands, before + 1, &mut db_scans,
                            &mut scan,
                        )
                    } else if let Some(s) = &mut sharded {
                        let live = env.trim.then(|| {
                            LiveSet::from_items(
                                env.db.n_items(),
                                cands.iter().flat_map(|c| c.iter()),
                            )
                        });
                        s.count(
                            &cands,
                            before + 1,
                            live.as_ref().map(|l| (l, cands[0].len())),
                            &mut db_scans,
                            &mut scan,
                        )
                    } else {
                        if env.trim {
                            let live = LiveSet::from_items(
                                env.db.n_items(),
                                cands.iter().flat_map(|c| c.iter()),
                            );
                            let r = trim_db_recorded(
                                trimmed.as_ref().unwrap_or(env.db),
                                &live,
                                cands[0].len(),
                                &mut scan,
                            );
                            trimmed = Some(r.db);
                        }
                        let cur = trimmed.as_ref().unwrap_or(env.db);
                        let counts = ParallelTrieCounter { threads: env.counting_threads }
                            .count(cur, &cands);
                        db_scans += 1;
                        scan.record_extent(before + 1, cur.len() as u64, cur.total_items() as u64);
                        counts
                    };
                    run.absorb_counts(&counts);
                    let (sb, tb) = match var {
                        Var::S => (before, t_run.levels_done()),
                        Var::T => (s_run.levels_done(), before),
                    };
                    update_jk(&mut jk_states, &s_run, &t_run, sb, tb, catalog);
                }
            }
        }

        // ---- Outputs ----
        // J^k_max conditions (including the non-anti-monotone ones) become
        // output filters at their final bound values.
        let jk_out = |states: &[JkState], var: Var| -> Vec<OneVar> {
            states
                .iter()
                .filter(|st| st.task.pruned == var)
                .map(|st| st.task.condition(st.series.current()))
                .collect()
        };
        let jk_s = jk_out(&jk_states, Var::S);
        let jk_t = jk_out(&jk_states, Var::T);

        let collect = |run: &LatticeRun<'_>, one: &[OneVar], jk: &[OneVar]| {
            run.valid_sets()
                .into_iter()
                .filter(|(s, _)| eval_all_one(one, s, catalog) && eval_all_one(jk, s, catalog))
                .collect::<Vec<_>>()
        };
        // Without 1-var pushing the constraint check on every frequent set
        // is the Apriori⁺ post-pass; account for it.
        if !self.push_one_var {
            let s_checks = s_run.frequent().total() as u64 * plan.s_one.len() as u64;
            let t_checks = t_run.frequent().total() as u64 * plan.t_one.len() as u64;
            s_run.stats_mut().record_checks(s_checks);
            t_run.stats_mut().record_checks(t_checks);
        }
        let s_sets = collect(&s_run, &plan.s_one, &jk_s);
        let t_sets = collect(&t_run, &plan.t_one, &jk_t);

        if !env.form_pairs {
            let empty = form_pairs(&[], &[], &plan.final_two, catalog, Some(0));
            return Ok(ExecutionOutcome {
                s_sets,
                t_sets,
                pair_result: empty,
                s_stats: s_run.stats().clone(),
                t_stats: t_run.stats().clone(),
                db_scans,
                scan,
                v_histories: jk_states
                    .into_iter()
                    .map(|st| (st.task.pruned, st.series.history().to_vec()))
                    .collect(),
                provenance: OutcomeProvenance::default(),
            });
        }
        let mut pair_result = form_pairs_with(
            &s_sets,
            &t_sets,
            &plan.final_two,
            catalog,
            env.max_pairs,
            env.counting_threads,
        );

        // Restrict the reported sets to Definition 3's *frequent valid*
        // sets: those participating in at least one valid pair. This makes
        // every strategy's output identical regardless of how much of the
        // validity pruning it performed during mining.
        let (s_sets, s_remap) = compact_used(s_sets, &pair_result.s_used);
        let (t_sets, t_remap) = compact_used(t_sets, &pair_result.t_used);
        for (si, ti) in &mut pair_result.pairs {
            *si = s_remap[*si as usize];
            *ti = t_remap[*ti as usize];
        }

        Ok(ExecutionOutcome {
            s_sets,
            t_sets,
            pair_result,
            s_stats: s_run.stats().clone(),
            t_stats: t_run.stats().clone(),
            db_scans,
            scan,
            v_histories: jk_states
                .into_iter()
                .map(|st| (st.task.pruned, st.series.history().to_vec()))
                .collect(),
            provenance: OutcomeProvenance::default(),
        })
    }
}

/// Estimated item-level selectivity of a pushed 1-var constraint: how the
/// compiled form restricts or requires items, as a fraction of the catalog.
/// A first step toward the paper's open problem 2 (cost models for CFQs) —
/// today it informs the EXPLAIN output; a cost-based optimizer would
/// consume the same numbers.
fn selectivity_note(c: &OneVar, catalog: &Catalog) -> String {
    let form = SuccinctForm::compile(std::slice::from_ref(c), catalog);
    let n = catalog.n_items().max(1) as f64;
    let mut notes = Vec::new();
    if let Some(a) = &form.allowed {
        notes.push(format!("allows {:.0}% of items", 100.0 * a.len() as f64 / n));
    }
    for g in &form.required_groups {
        notes.push(format!("requires 1 of {} items", g.len()));
    }
    if !form.residual_am.is_empty() {
        notes.push("anti-monotone check per candidate".to_string());
    }
    if !form.post_filters.is_empty() {
        notes.push("post filter".to_string());
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!("  [{}]", notes.join("; "))
    }
}

/// Derives the `J^k_max` tasks of a non-quasi-succinct aggregate
/// constraint: one per side bounded by a `sum` over a non-negative domain.
fn jk_tasks_for(c: &TwoVar, catalog: &Catalog) -> Vec<JkTask> {
    let mut out = Vec::new();
    match c {
        TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => {
            let nonneg = |attr: AttrId| {
                catalog.column_min_num(attr).map(|m| m >= 0.0).unwrap_or(true)
            };
            let mut push =
                |pruned: Var, bounded_agg: Agg, bounded_attr: AttrId, op: CmpOp, source: AttrId| {
                    if nonneg(source) {
                        out.push(JkTask {
                            pruned,
                            op,
                            target: BoundTarget::Sum { bounded_agg, bounded_attr, source_attr: source },
                        });
                    }
                };
            match op {
                CmpOp::Le | CmpOp::Lt if *t_agg == Agg::Sum => {
                    push(Var::S, *s_agg, *s_attr, *op, *t_attr);
                }
                CmpOp::Ge | CmpOp::Gt if *s_agg == Agg::Sum => {
                    push(Var::T, *t_agg, *t_attr, op.mirror(), *s_attr);
                }
                CmpOp::Eq => {
                    if *t_agg == Agg::Sum {
                        push(Var::S, *s_agg, *s_attr, CmpOp::Le, *t_attr);
                    }
                    if *s_agg == Agg::Sum {
                        push(Var::T, *t_agg, *t_attr, CmpOp::Le, *s_attr);
                    }
                }
                _ => {}
            }
        }
        // 2-var count comparisons (language extension): the bounded side is
        // pruned through the partner's count series; no domain assumption
        // needed (count is non-negative by construction).
        TwoVar::CountCmp { s_attr, op, t_attr } => match op {
            CmpOp::Le | CmpOp::Lt => out.push(JkTask {
                pruned: Var::S,
                op: *op,
                target: BoundTarget::Count { bounded_attr: *s_attr, source_attr: *t_attr },
            }),
            CmpOp::Ge | CmpOp::Gt => out.push(JkTask {
                pruned: Var::T,
                op: op.mirror(),
                target: BoundTarget::Count { bounded_attr: *t_attr, source_attr: *s_attr },
            }),
            CmpOp::Eq => {
                out.push(JkTask {
                    pruned: Var::S,
                    op: CmpOp::Le,
                    target: BoundTarget::Count { bounded_attr: *s_attr, source_attr: *t_attr },
                });
                out.push(JkTask {
                    pruned: Var::T,
                    op: CmpOp::Le,
                    target: BoundTarget::Count { bounded_attr: *t_attr, source_attr: *s_attr },
                });
            }
            CmpOp::Ne => {}
        },
        TwoVar::Domain { .. } => {}
    }
    out
}

/// Live state of one iterative-bound task during execution.
struct JkState {
    task: JkTask,
    series: Series,
    /// Bound updates need the source family downward-closed: no required
    /// groups pushed on the source lattice.
    updatable: bool,
}

/// After absorbing a level, refresh the `V` series whose source lattice
/// just completed a level ≥ 2.
fn update_jk(
    states: &mut [JkState],
    s_run: &LatticeRun<'_>,
    t_run: &LatticeRun<'_>,
    s_before: usize,
    t_before: usize,
    catalog: &Catalog,
) {
    for st in states.iter_mut() {
        let (run, before) = match st.task.pruned {
            Var::S => (t_run, t_before),
            Var::T => (s_run, s_before),
        };
        let after = run.levels_done();
        if st.updatable && after > before && after >= 2 {
            let level_sets = run.frequent().level_sets(after);
            st.series.update(&level_sets, after, catalog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    fn assert_same_answer(src: &str, min_support: u64) {
        let cat = catalog();
        let d = db();
        let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, min_support);
        let base = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
        let full = Optimizer::default().evaluate(&q, &env).unwrap();
        let seq = Optimizer { dovetail: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
        let one_var = Optimizer::cap_one_var().evaluate(&q, &env).unwrap();
        for (name, o) in
            [("full", &full), ("sequential", &seq), ("cap-1var", &one_var)]
        {
            assert_eq!(o.s_sets, base.s_sets, "`{src}` {name}: S-sets diverge");
            assert_eq!(o.t_sets, base.t_sets, "`{src}` {name}: T-sets diverge");
            assert_eq!(
                o.pair_result.count, base.pair_result.count,
                "`{src}` {name}: pair counts diverge"
            );
            let mut a = o.pair_result.pairs.clone();
            let mut b = base.pair_result.pairs.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "`{src}` {name}: pairs diverge");
        }
    }

    #[test]
    fn equivalence_quasi_succinct_domain() {
        assert_same_answer("S.Type disjoint T.Type", 2);
        assert_same_answer("S.Type = T.Type", 2);
        assert_same_answer("S.Type subset T.Type", 2);
        assert_same_answer("S disjoint T", 3);
    }

    #[test]
    fn equivalence_quasi_succinct_minmax() {
        assert_same_answer("max(S.Price) <= min(T.Price)", 2);
        assert_same_answer("min(S.Price) <= min(T.Price)", 2);
        assert_same_answer("max(S.Price) >= max(T.Price)", 2);
        assert_same_answer("min(S.Price) > max(T.Price)", 2);
    }

    #[test]
    fn equivalence_sum_avg() {
        assert_same_answer("sum(S.Price) <= sum(T.Price)", 2);
        assert_same_answer("sum(S.Price) <= max(T.Price)", 2);
        assert_same_answer("avg(S.Price) <= avg(T.Price)", 2);
        assert_same_answer("avg(S.Price) >= avg(T.Price)", 3);
        assert_same_answer("sum(S.Price) = sum(T.Price)", 2);
    }

    #[test]
    fn equivalence_mixed_queries() {
        assert_same_answer("max(S.Price) <= 40 & min(T.Price) >= 30 & S.Type = T.Type", 2);
        assert_same_answer(
            "S.Type subset {A, B} & max(S.Price) <= min(T.Price) & sum(S.Price) <= sum(T.Price)",
            2,
        );
        assert_same_answer("count(S.Type) = 1 & count(T.Type) = 1 & S.Type != T.Type", 2);
    }

    #[test]
    fn trim_on_off_identical_answers() {
        let cat = catalog();
        let d = db();
        // Cover the dovetail + J^k_max path (sum/sum) and the sequential
        // executor, with every strategy family.
        for src in [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
            "avg(S.Price) <= avg(T.Price) & S.Type = T.Type",
        ] {
            let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
            let env_on = QueryEnv::new(&d, &cat, 2);
            let env_off = QueryEnv::new(&d, &cat, 2).with_trim(false);
            for opt in [
                Optimizer::default(),
                Optimizer { dovetail: false, ..Optimizer::default() },
                Optimizer::apriori_plus(),
            ] {
                let on = opt.evaluate(&q, &env_on).unwrap();
                let off = opt.evaluate(&q, &env_off).unwrap();
                assert_eq!(on.s_sets, off.s_sets, "`{src}`: S-sets diverge");
                assert_eq!(on.t_sets, off.t_sets, "`{src}`: T-sets diverge");
                assert_eq!(on.pair_result.pairs, off.pair_result.pairs, "`{src}`");
                assert_eq!(on.v_histories, off.v_histories, "`{src}`: V^k diverges");
                // Trimming never touches the ccc accounting or scan count…
                assert_eq!(on.db_scans, off.db_scans, "`{src}`");
                // …and can only shrink the volume each scan touches.
                assert!(
                    on.scan.items_scanned <= off.scan.items_scanned,
                    "`{src}`: trimmed scan volume grew"
                );
                assert_eq!(off.scan.trim_passes, 0);
            }
        }
    }

    #[test]
    fn backends_identical_answers() {
        let cat = catalog();
        let d = db();
        // Cover the dovetail + J^k_max path (sum/sum), the sequential
        // executor and every strategy family, across all four backends.
        for src in [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
            "avg(S.Price) <= avg(T.Price) & S.Type = T.Type",
        ] {
            let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
            for opt in [
                Optimizer::default(),
                Optimizer { dovetail: false, ..Optimizer::default() },
                Optimizer::apriori_plus(),
            ] {
                let base = opt.evaluate(&q, &QueryEnv::new(&d, &cat, 2)).unwrap();
                for b in CountingBackend::all() {
                    let env = QueryEnv::new(&d, &cat, 2).with_backend(b);
                    let got = opt.evaluate(&q, &env).unwrap();
                    assert_eq!(base.s_sets, got.s_sets, "`{src}` {b}: S-sets diverge");
                    assert_eq!(base.t_sets, got.t_sets, "`{src}` {b}: T-sets diverge");
                    assert_eq!(base.pair_result.pairs, got.pair_result.pairs, "`{src}` {b}");
                    assert_eq!(base.v_histories, got.v_histories, "`{src}` {b}: V^k diverges");
                    if b == CountingBackend::Tidset || b == CountingBackend::Bitmap {
                        // A fully vertical run reads the database exactly
                        // once: the index inversion pass.
                        assert_eq!(got.db_scans, 1, "`{src}` {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_answers_and_accounting_match_unsharded() {
        let cat = catalog();
        let d = db();
        // Dovetail + J^k_max, sequential, and Apriori⁺, across all four
        // backends and several shard counts: answers AND accounting
        // (scan count, volumes, trim drops) must be bit-identical.
        for src in [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
        ] {
            let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
            for opt in [
                Optimizer::default(),
                Optimizer { dovetail: false, ..Optimizer::default() },
                Optimizer::apriori_plus(),
            ] {
                for b in CountingBackend::all() {
                    let base =
                        opt.evaluate(&q, &QueryEnv::new(&d, &cat, 2).with_backend(b)).unwrap();
                    for shards in [2usize, 3, 8] {
                        let env =
                            QueryEnv::new(&d, &cat, 2).with_backend(b).with_shards(shards);
                        let got = opt.evaluate(&q, &env).unwrap();
                        let tag = format!("`{src}` {b} shards={shards}");
                        assert_eq!(base.s_sets, got.s_sets, "{tag}: S-sets diverge");
                        assert_eq!(base.t_sets, got.t_sets, "{tag}: T-sets diverge");
                        assert_eq!(base.pair_result.pairs, got.pair_result.pairs, "{tag}");
                        assert_eq!(base.v_histories, got.v_histories, "{tag}: V^k diverges");
                        assert_eq!(base.db_scans, got.db_scans, "{tag}: scan count");
                        assert_eq!(
                            base.scan.rows_scanned, got.scan.rows_scanned,
                            "{tag}: rows scanned"
                        );
                        assert_eq!(
                            base.scan.items_scanned, got.scan.items_scanned,
                            "{tag}: items scanned"
                        );
                        assert_eq!(
                            base.scan.trim_rows_dropped, got.scan.trim_rows_dropped,
                            "{tag}: trim drops"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scan_extents_match_scan_count() {
        let cat = catalog();
        let d = db();
        let q =
            bind_query(&parse_query("sum(S.Price) <= sum(T.Price)").unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, 2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        assert_eq!(out.scan.extents.len(), out.db_scans as usize);
        assert_eq!(out.scan.extents[0].items, d.total_items() as u64);
        assert!(out
            .scan
            .extents
            .windows(2)
            .all(|w| w[1].items <= w[0].items));
    }

    #[test]
    fn plan_strategies_match_figure1() {
        let cat = catalog();
        let check = |src: &str, expected: StrategyKind| {
            let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
            let plan = Optimizer::default().build_plan(&q, &cat);
            assert_eq!(plan.strategies()[0].1, expected, "`{src}`");
        };
        check("S.Type disjoint T.Type", StrategyKind::QuasiSuccinct);
        check("max(S.Price) <= min(T.Price)", StrategyKind::QuasiSuccinct);
        check("avg(S.Price) <= avg(T.Price)", StrategyKind::InducedWeaker);
        check("sum(S.Price) <= sum(T.Price)", StrategyKind::JkmaxIterative);
        check("min(S.Price) != max(T.Price)", StrategyKind::FinalVerifyOnly);
    }

    #[test]
    fn explain_mentions_each_constraint() {
        let cat = catalog();
        let q = bind_query(
            &parse_query("max(S.Price) <= 40 & sum(S.Price) <= sum(T.Price)").unwrap(),
            &cat,
        )
        .unwrap();
        let plan = Optimizer::default().build_plan(&q, &cat);
        let text = plan.explain(&cat);
        assert!(text.contains("J^k_max"));
        assert!(text.contains("1-var constraints: 1 on S"));
    }

    #[test]
    fn jkmax_records_v_history_and_prunes() {
        let cat = catalog();
        let d = db();
        let q = bind_query(&parse_query("sum(S.Price) <= sum(T.Price)").unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, 2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        assert_eq!(out.v_histories.len(), 1);
        let (var, hist) = &out.v_histories[0];
        assert_eq!(*var, Var::S);
        assert!(!hist.is_empty());
        // Lemma 7: non-increasing.
        assert!(hist.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12));
        // Compared to no-jkmax, at most the same number of counted S-sets.
        let no_jk = Optimizer { use_jkmax: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
        assert!(out.s_stats.support_counted <= no_jk.s_stats.support_counted);
    }

    #[test]
    fn split_universes_and_supports() {
        let cat = catalog();
        let d = db();
        let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, 2)
            .with_s_universe(vec![ItemId(0), ItemId(1), ItemId(2)])
            .with_t_universe(vec![ItemId(3), ItemId(4), ItemId(5)])
            .with_supports(2, 1);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        for (s, _) in &out.s_sets {
            assert!(s.iter().all(|i| i.0 <= 2));
        }
        for (t, _) in &out.t_sets {
            assert!(t.iter().all(|i| i.0 >= 3));
        }
        let base = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
        assert_eq!(out.pair_result.count, base.pair_result.count);
    }

    #[test]
    fn max_level_env_caps_depth() {
        let cat = catalog();
        let d = db();
        let q = bind_query(&parse_query("freq(S)").unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, 1).with_max_level(2);
        let out = Optimizer::default().evaluate(&q, &env).unwrap();
        assert!(out.s_sets.iter().all(|(s, _)| s.len() <= 2));
    }
}

#[cfg(test)]
mod jk_soundness_tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    /// End-to-end version of the VSeries soundness regression: a heavy
    /// frequent T *pair* with no deeper extension must keep its valid S
    /// partners alive through J^k_max pruning.
    #[test]
    fn jkmax_keeps_partners_of_small_heavy_sets() {
        // Items 0..2 are the S domain (price 150); 3,4 heavy T (100);
        // 5..9 cheap T (1).
        let mut b = CatalogBuilder::new(10);
        b.num_attr(
            "Price",
            vec![150.0, 150.0, 150.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let cat = b.build();
        // Heavy pair {3,4} frequent; cheap clique {5..9} frequent deep;
        // no transaction mixes heavy and cheap beyond what keeps {3,4}
        // unextendable.
        let db = TransactionDb::from_u32(
            10,
            &[
                &[0, 1, 3, 4],
                &[0, 2, 3, 4],
                &[1, 2, 3, 4],
                &[0, 5, 6, 7, 8, 9],
                &[1, 5, 6, 7, 8, 9],
                &[2, 5, 6, 7, 8, 9],
            ],
        );
        let q = bind_query(&parse_query("sum(S.Price) <= sum(T.Price)").unwrap(), &cat)
            .unwrap();
        let env = QueryEnv::new(&db, &cat, 3)
            .with_s_universe((0..3).map(ItemId).collect())
            .with_t_universe((3..10).map(ItemId).collect());
        let jk = Optimizer::default().evaluate(&q, &env).unwrap();
        let no = Optimizer { use_jkmax: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
        assert_eq!(jk.pair_result.count, no.pair_result.count);
        assert_eq!(jk.s_sets, no.s_sets);
        // The S singleton (price 150 > any cheap T sum of ≤ 5 elements)
        // pairs only with the heavy T pair — it must be in the answer.
        assert!(jk.s_sets.iter().any(|(s, _)| s.len() == 1));
    }
}

#[cfg(test)]
mod count_extension_tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    fn setup() -> (TransactionDb, Catalog) {
        let db = TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
            ],
        );
        let mut b = CatalogBuilder::new(6);
        b.cat_attr("Type", &["a", "b", "a", "c", "b", "c"]).unwrap();
        (db, b.build())
    }

    #[test]
    fn count_two_var_matches_baseline() {
        let (db, cat) = setup();
        for src in [
            "count(S.Type) <= count(T.Type)",
            "count(S) <= count(T)",
            "count(S.Type) >= count(T.Type)",
            "count(S) = count(T)",
            "count(S.Type) < count(T)",
        ] {
            let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
            for min_support in [2u64, 3] {
                let env = QueryEnv::new(&db, &cat, min_support);
                let base = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
                let full = Optimizer::default().evaluate(&q, &env).unwrap();
                let seq = Optimizer { dovetail: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
                assert_eq!(base.pair_result.count, full.pair_result.count, "`{src}`");
                assert_eq!(base.s_sets, full.s_sets, "`{src}`");
                assert_eq!(base.t_sets, full.t_sets, "`{src}`");
                assert_eq!(base.pair_result.count, seq.pair_result.count, "`{src}`");
            }
        }
    }

    #[test]
    fn count_task_prunes() {
        let (db, cat) = setup();
        // S must have at most as many items as T has types; T types are
        // bounded by the count series, pruning deep S-sets.
        let q = bind_query(&parse_query("count(S) <= count(T.Type)").unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&db, &cat, 2);
        let plan = Optimizer::default().build_plan(&q, &cat);
        assert_eq!(plan.strategies()[0].1, StrategyKind::JkmaxIterative);
        let full = Optimizer::default().evaluate(&q, &env).unwrap();
        let off = Optimizer { use_jkmax: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
        assert_eq!(full.pair_result.count, off.pair_result.count);
        assert!(full.s_stats.support_counted <= off.s_stats.support_counted);
        assert!(!full.v_histories.is_empty());
    }
}

#[cfg(test)]
mod parallel_counting_tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    /// Parallel counting must be bit-identical to sequential across the
    /// whole pipeline (dovetailed and sequential execution alike).
    #[test]
    fn parallel_counting_is_equivalent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n_items = 20usize;
        let txs: Vec<Vec<ItemId>> = (0..300)
            .map(|_| {
                (0..rng.gen_range(2..8))
                    .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(n_items, txs).unwrap();
        let mut b = CatalogBuilder::new(n_items);
        b.num_attr("Price", (0..n_items).map(|i| (i * 7 % 50) as f64).collect()).unwrap();
        let cat = b.build();
        let q = bind_query(
            &parse_query("max(S.Price) <= min(T.Price) & sum(S.Price) <= sum(T.Price)")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let seq_env = QueryEnv::new(&db, &cat, 5);
        let par_env = QueryEnv::new(&db, &cat, 5).with_counting_threads(0);
        for opt in [
            Optimizer::default(),
            Optimizer { dovetail: false, ..Optimizer::default() },
        ] {
            let a = opt.evaluate(&q, &seq_env).unwrap();
            let b = opt.evaluate(&q, &par_env).unwrap();
            assert_eq!(a.pair_result.count, b.pair_result.count);
            assert_eq!(a.s_sets, b.s_sets);
            assert_eq!(a.t_sets, b.t_sets);
            assert_eq!(a.s_stats.support_counted, b.s_stats.support_counted);
        }
    }
}

#[cfg(test)]
mod env_validation_tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};

    #[test]
    fn mismatched_catalog_is_a_typed_error() {
        let db = TransactionDb::from_u32(5, &[&[0, 4]]);
        let cat = Catalog::empty(2);
        let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
        let err = Optimizer::default()
            .evaluate(&q, &QueryEnv::new(&db, &cat, 1))
            .unwrap_err();
        assert!(matches!(err, CfqError::Engine(_)), "{err}");
        assert!(err.to_string().contains("catalog covers 2 items"), "{err}");
    }
}


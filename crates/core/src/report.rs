//! Post-execution reporting — the system's "EXPLAIN ANALYZE".
//!
//! [`ExecutionOutcome::report`] renders what actually happened: per-level
//! candidate/frequent counts for both lattices, pruning and constraint-check
//! counters, the `V^k` bound trajectories, and the pair-formation summary.
//! The §7.1 per-level table of the paper is exactly the `frequent` column
//! of this report compared across two runs.

use crate::optimizer::ExecutionOutcome;
use cfq_constraints::Var;
use cfq_mining::WorkStats;
use cfq_types::Itemset;
use std::fmt::Write as _;

impl ExecutionOutcome {
    /// Iterates the materialized pairs as `(S, T, S-support, T-support)`.
    pub fn pairs(&self) -> impl Iterator<Item = (&Itemset, &Itemset, u64, u64)> {
        self.pair_result.pairs.iter().map(|&(si, ti)| {
            let (s, s_sup) = &self.s_sets[si as usize];
            let (t, t_sup) = &self.t_sets[ti as usize];
            (s, t, *s_sup, *t_sup)
        })
    }

    /// Writes the materialized pairs as CSV
    /// (`antecedent,consequent,antecedent_support,consequent_support`;
    /// itemsets as `;`-separated item ids).
    pub fn write_pairs_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "antecedent,consequent,antecedent_support,consequent_support")?;
        let ids = |s: &Itemset| {
            s.iter().map(|i| i.0.to_string()).collect::<Vec<_>>().join(";")
        };
        for (s, t, s_sup, t_sup) in self.pairs() {
            writeln!(w, "{},{},{s_sup},{t_sup}", ids(s), ids(t))?;
        }
        Ok(())
    }

    /// Renders a human-readable execution report.
    pub fn report(&self) -> String {
        let mut out = String::from("CFQ execution report\n====================\n");
        let _ = writeln!(out, "database scans: {}", self.db_scans);
        for (name, stats, sets) in [
            ("S", &self.s_stats, self.s_sets.len()),
            ("T", &self.t_stats, self.t_sets.len()),
        ] {
            let _ = writeln!(out, "\n[{name}-lattice]");
            render_levels(&mut out, stats);
            let _ = writeln!(
                out,
                "  counted {} sets, pruned {} candidates, {} constraint checks",
                stats.support_counted, stats.pruned_candidates, stats.constraint_checks
            );
            let _ = writeln!(out, "  {sets} frequent valid sets in the answer");
        }
        if !self.v_histories.is_empty() {
            let _ = writeln!(out, "\n[iterative bounds]");
            for (var, hist) in &self.v_histories {
                let side = match var {
                    Var::S => "S",
                    Var::T => "T",
                };
                let series: Vec<String> =
                    hist.iter().map(|(k, v)| format!("V^{k}={v:.0}")).collect();
                let _ = writeln!(out, "  pruning {side}: {}", series.join("  "));
            }
        }
        let _ = writeln!(
            out,
            "\n[pairs] {} valid pairs ({} checks{})",
            self.pair_result.count,
            self.pair_result.checks,
            if self.pair_result.truncated { ", materialization truncated" } else { "" }
        );
        out
    }
}

fn render_levels(out: &mut String, stats: &WorkStats) {
    if stats.levels.is_empty() {
        let _ = writeln!(out, "  (no levels counted)");
        return;
    }
    let _ = write!(out, "  level:     ");
    for l in &stats.levels {
        let _ = write!(out, "{:>8}", l.level);
    }
    let _ = write!(out, "\n  candidates:");
    for l in &stats.levels {
        let _ = write!(out, "{:>8}", l.candidates);
    }
    let _ = write!(out, "\n  frequent:  ");
    for l in &stats.levels {
        let _ = write!(out, "{:>8}", l.frequent);
    }
    let _ = writeln!(out);
}

#[cfg(test)]
mod tests {
    use crate::optimizer::{Optimizer, QueryEnv};
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::{CatalogBuilder, TransactionDb};

    #[test]
    fn report_renders_all_sections() {
        let db = TransactionDb::from_u32(
            4,
            &[&[0, 1, 2], &[0, 1], &[1, 2, 3], &[0, 2, 3], &[0, 1, 2, 3]],
        );
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let cat = b.build();
        let q = bind_query(&parse_query("sum(S.Price) <= sum(T.Price)").unwrap(), &cat)
            .unwrap();
        let out = Optimizer::default().evaluate(&q, &QueryEnv::new(&db, &cat, 2)).unwrap();
        let report = out.report();
        assert!(report.contains("[S-lattice]"));
        assert!(report.contains("[T-lattice]"));
        assert!(report.contains("[iterative bounds]"));
        assert!(report.contains("[pairs]"));
        assert!(report.contains("candidates:"));
        assert!(report.contains("database scans:"));
    }

    #[test]
    fn pairs_iterator_and_csv() {
        let db = TransactionDb::from_u32(3, &[&[0, 1], &[1, 2], &[0, 1, 2]]);
        let cat = cfq_types::Catalog::empty(3);
        let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
        let out = Optimizer::default().evaluate(&q, &QueryEnv::new(&db, &cat, 1)).unwrap();
        assert_eq!(out.pairs().count() as u64, out.pair_result.count);
        for (s, t, s_sup, t_sup) in out.pairs() {
            assert!(!s.intersects(t));
            assert!(s_sup >= 1 && t_sup >= 1);
        }
        let mut buf = Vec::new();
        out.write_pairs_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("antecedent,consequent"));
        assert_eq!(text.lines().count() as u64, out.pair_result.count + 1);
    }

    #[test]
    fn report_without_bounds_section() {
        let db = TransactionDb::from_u32(3, &[&[0, 1], &[1, 2], &[0, 1, 2]]);
        let cat = cfq_types::Catalog::empty(3);
        let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
        let out = Optimizer::default().evaluate(&q, &QueryEnv::new(&db, &cat, 1)).unwrap();
        let report = out.report();
        assert!(!report.contains("[iterative bounds]"));
        assert!(report.contains("[pairs]"));
    }
}

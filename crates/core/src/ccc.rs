//! ccc-optimality accounting (§6.2, Definition 6).
//!
//! A computation strategy is **ccc-optimal** for a constraint class when
//! (1) it counts the support of a candidate set iff all its (relevant)
//! subsets are frequent and the set is valid, and (2) it invokes the
//! constraint-checking operation only on singletons.
//!
//! [`audit_lattice`] empirically checks both conditions for a finished
//! [`LatticeRun`] (with its audit log enabled) against brute-force ground
//! truth — usable on small instances in tests. Two reconciliations with the
//! paper's informal definition:
//!
//! * Level 1 is exempt from condition (1): every strategy — including the
//!   paper's own optimizer — counts all singletons, because `L1` feeds both
//!   frequency verification and the quasi-succinct reduction constants.
//! * "All subsets frequent" is read as "all *valid* subsets frequent":
//!   for succinct non-anti-monotone constraints the invalid subsets are
//!   never counted (that is the point of the MGF), so their frequency
//!   cannot be a precondition. The paper's own FM discussion uses the same
//!   reading.

use crate::cap::LatticeRun;
use cfq_constraints::{eval_all_one, OneVar};
use cfq_types::{Catalog, Itemset, TransactionDb};

/// The auditor's findings.
#[derive(Debug, Clone)]
pub struct CccReport {
    /// Condition-1 violations: counted sets that were invalid or had an
    /// uncounted-yet-relevant infrequent subset.
    pub violations: Vec<String>,
    /// Sets counted at levels ≥ 2.
    pub counted: u64,
    /// Constraint-check invocations recorded by the run.
    pub constraint_checks: u64,
    /// Upper bound condition (2) allows: the active domain size.
    pub check_budget: u64,
}

impl CccReport {
    /// Whether both ccc conditions held.
    pub fn is_ccc_optimal(&self) -> bool {
        self.violations.is_empty() && self.constraint_checks <= self.check_budget
    }
}

/// Audits a finished lattice run against Definition 6.
///
/// `one_var` must be the (original) 1-var constraints of the lattice's
/// variable; `min_support` the run's threshold. Brute-force: intended for
/// test-sized databases.
pub fn audit_lattice(
    run: &LatticeRun<'_>,
    db: &TransactionDb,
    catalog: &Catalog,
    one_var: &[OneVar],
    min_support: u64,
) -> CccReport {
    let log = run
        .counted_log()
        .expect("enable_audit_log() must be called before the run");
    let mut violations = Vec::new();

    let valid = |s: &Itemset| eval_all_one(one_var, s, catalog);

    for set in log {
        if set.len() < 2 {
            continue;
        }
        if !valid(set) {
            violations.push(format!("counted invalid set {set}"));
            continue;
        }
        let mut bad_subset = None;
        set.for_each_len_minus_one(|sub| {
            if bad_subset.is_none() && valid(sub) && db.support(sub) < min_support {
                bad_subset = Some(sub.clone());
            }
        });
        if let Some(sub) = bad_subset {
            violations.push(format!(
                "counted {set} though its valid subset {sub} is infrequent"
            ));
        }
    }

    CccReport {
        violations,
        counted: log.iter().filter(|s| s.len() >= 2).count() as u64,
        constraint_checks: run.stats().constraint_checks,
        check_budget: catalog.n_items() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::LatticeConfig;
    use cfq_constraints::{bind_query, parse_query, SuccinctForm, Var};
    use cfq_mining::{SupportCounter, TrieCounter};
    use cfq_types::{CatalogBuilder, ItemId};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    fn audited_run(src: &str, min_support: u64, cat: &Catalog, d: &TransactionDb) -> CccReport {
        let q = bind_query(&parse_query(src).unwrap(), cat).unwrap();
        let one: Vec<OneVar> = q.one_var_for(Var::S).cloned().collect();
        let form = SuccinctForm::compile(&one, cat);
        let mut run = LatticeRun::new(
            LatticeConfig {
                var: Var::S,
                universe: (0..6).map(ItemId).collect(),
                min_support,
                max_level: 0,
            },
            form,
            cat,
        );
        run.enable_audit_log();
        loop {
            let cands = run.next_candidates();
            if cands.is_empty() {
                break;
            }
            let counts = TrieCounter.count(d, &cands);
            run.absorb_counts(&counts);
        }
        audit_lattice(&run, d, cat, &one, min_support)
    }

    /// Theorem 4: CAP is ccc-optimal for succinct 1-var constraints.
    #[test]
    fn cap_is_ccc_optimal_for_succinct_constraints() {
        let cat = catalog();
        let d = db();
        for src in [
            "max(S.Price) <= 40",
            "min(S.Price) <= 20",
            "min(S.Price) >= 30",
            "max(S.Price) >= 50",
            "S.Type subset {A, B}",
            "S.Type intersects {C}",
            "S.Type = {A}",
            "max(S.Price) <= 50 & min(S.Price) <= 20",
        ] {
            let report = audited_run(src, 2, &cat, &d);
            assert!(
                report.is_ccc_optimal(),
                "`{src}` not ccc-optimal: {:?} (checks {}/{})",
                report.violations,
                report.constraint_checks,
                report.check_budget
            );
        }
    }

    /// Non-succinct constraints (sum) legitimately spend per-candidate
    /// checks — the audit must report that condition (2) fails while
    /// condition (1) still holds (anti-monotone pruning never counts an
    /// invalid set).
    #[test]
    fn sum_constraint_spends_checks_but_counts_validly() {
        let cat = catalog();
        let d = db();
        let report = audited_run("sum(S.Price) <= 60", 1, &cat, &d);
        assert!(report.violations.is_empty());
        assert!(report.constraint_checks > report.check_budget || report.counted == 0);
    }
}

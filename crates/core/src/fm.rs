//! The "full materialization" (FM) strategy of §6.2.
//!
//! FM is the paper's counter-example motivating ccc-optimality's second
//! condition: it first computes all valid sets by generating *every*
//! subset of the active domain and checking it against the constraints
//! (2^N constraint checks in the worst case), then counts support only for
//! the valid sets, in ascending cardinality. It therefore satisfies
//! condition (1) — it never counts an invalid set — while being hopeless
//! on condition (2).
//!
//! Implemented faithfully (including the exponential enumeration, guarded
//! by a domain-size limit) so that the ccc accounting comparisons in the
//! test-suite and docs can be run for real.

use crate::optimizer::{ExecutionOutcome, OutcomeProvenance, QueryEnv};
use crate::pairs::{compact_used, form_pairs};
use cfq_constraints::{eval_all_one, BoundQuery, OneVar, Var};
use cfq_mining::{SupportCounter, TrieCounter, WorkStats};
use cfq_types::{CfqError, ItemId, Itemset, Result};

/// Largest variable domain FM will enumerate (2^20 subsets).
pub const FM_MAX_DOMAIN: usize = 20;

/// Runs the FM strategy. Errors when a variable's domain exceeds
/// [`FM_MAX_DOMAIN`] items (the whole point of FM is that it does not
/// scale; we refuse to melt the machine demonstrating it).
pub fn full_materialization(query: &BoundQuery, env: &QueryEnv<'_>) -> Result<ExecutionOutcome> {
    let (s_sets, s_stats) = fm_side(query, env, Var::S)?;
    let (t_sets, t_stats) = fm_side(query, env, Var::T)?;
    let db_scans = s_stats.db_scans + t_stats.db_scans;

    let mut pair_result =
        form_pairs(&s_sets, &t_sets, &query.two_var, env.catalog, env.max_pairs);
    let (s_sets, s_remap) = compact_used(s_sets, &pair_result.s_used);
    let (t_sets, t_remap) = compact_used(t_sets, &pair_result.t_used);
    for (si, ti) in &mut pair_result.pairs {
        *si = s_remap[*si as usize];
        *ti = t_remap[*ti as usize];
    }

    let mut scan = s_stats.scan.clone();
    scan.absorb(&t_stats.scan);
    Ok(ExecutionOutcome {
        s_sets,
        t_sets,
        pair_result,
        s_stats,
        t_stats,
        db_scans,
        scan,
        v_histories: Vec::new(),
        provenance: OutcomeProvenance::default(),
    })
}

#[allow(clippy::type_complexity)]
fn fm_side(
    query: &BoundQuery,
    env: &QueryEnv<'_>,
    var: Var,
) -> Result<(Vec<(Itemset, u64)>, WorkStats)> {
    let universe: Vec<ItemId> = {
        let u = match var {
            Var::S => &env.s_universe,
            Var::T => &env.t_universe,
        };
        if u.is_empty() {
            (0..env.db.n_items() as u32).map(ItemId).collect()
        } else {
            u.clone()
        }
    };
    if universe.len() > FM_MAX_DOMAIN {
        return Err(CfqError::Config(format!(
            "FM enumerates 2^{} subsets; refusing domains above {FM_MAX_DOMAIN} items",
            universe.len()
        )));
    }
    let min_support = match var {
        Var::S => env.s_min_support,
        Var::T => env.t_min_support,
    };
    let one: Vec<OneVar> = query.one_var_for(var).cloned().collect();
    let mut stats = WorkStats::new();

    // Phase 1: generate-and-test every subset (2^N constraint checks).
    let all: Itemset = universe.iter().copied().collect();
    let mut valid_by_level: Vec<Vec<Itemset>> = Vec::new();
    for sub in all.all_nonempty_subsets() {
        stats.record_checks(one.len().max(1) as u64);
        if eval_all_one(&one, &sub, env.catalog) {
            let level = sub.len();
            if valid_by_level.len() < level {
                valid_by_level.resize(level, Vec::new());
            }
            valid_by_level[level - 1].push(sub);
        }
    }

    // Phase 2: count support in ascending cardinality; stop descending a
    // branch only via frequency of whole levels (FM does no subset
    // pruning — that is its other weakness, it counts valid-but-doomed
    // sets whose subsets are infrequent).
    let mut out = Vec::new();
    for (idx, mut level_sets) in valid_by_level.into_iter().enumerate() {
        if level_sets.is_empty() {
            continue;
        }
        level_sets.sort();
        let n_candidates = level_sets.len() as u64;
        let counts = TrieCounter.count(env.db, &level_sets);
        stats.record_scan();
        stats
            .scan
            .record_extent(idx + 1, env.db.len() as u64, env.db.total_items() as u64);
        let mut frequent = 0u64;
        for (s, n) in level_sets.into_iter().zip(counts) {
            if n >= min_support {
                frequent += 1;
                out.push((s, n));
            }
        }
        stats.record_level(idx + 1, n_candidates, frequent);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::{Catalog, CatalogBuilder, TransactionDb};

    fn setup() -> (TransactionDb, Catalog) {
        let db = TransactionDb::from_u32(
            5,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2, 3, 4], &[0, 1, 2, 3]],
        );
        let mut b = CatalogBuilder::new(5);
        b.num_attr("Price", vec![5.0, 10.0, 15.0, 20.0, 25.0]).unwrap();
        (db, b.build())
    }

    #[test]
    fn fm_matches_the_optimizer() {
        let (db, catalog) = setup();
        for src in [
            "max(S.Price) <= min(T.Price)",
            "min(S.Price) <= 10 & sum(T.Price) <= 40",
            "sum(S.Price) <= sum(T.Price)",
        ] {
            let q = bind_query(&parse_query(src).unwrap(), &catalog).unwrap();
            let env = QueryEnv::new(&db, &catalog, 2);
            let fm = full_materialization(&q, &env).unwrap();
            let opt = Optimizer::default().evaluate(&q, &env).unwrap();
            assert_eq!(fm.pair_result.count, opt.pair_result.count, "`{src}`");
            assert_eq!(fm.s_sets, opt.s_sets, "`{src}`");
            assert_eq!(fm.t_sets, opt.t_sets, "`{src}`");
        }
    }

    #[test]
    fn fm_spends_exponential_checks() {
        let (db, catalog) = setup();
        let q = bind_query(&parse_query("max(S.Price) <= 15").unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(&db, &catalog, 2);
        let fm = full_materialization(&q, &env).unwrap();
        // 2^5 - 1 subsets per variable side.
        assert!(fm.s_stats.constraint_checks >= 31);
        // …which is what ccc condition 2 forbids (budget = 5 items).
        assert!(fm.s_stats.constraint_checks > catalog.n_items() as u64);
        // But condition 1 holds: only valid sets were counted.
        let price = catalog.attr("Price").unwrap();
        for (s, _) in &fm.s_sets {
            assert!(catalog.max_num(price, s).unwrap() <= 15.0);
        }
    }

    #[test]
    fn fm_refuses_large_domains() {
        let db = TransactionDb::from_u32(25, &[&[0, 1]]);
        let catalog = Catalog::empty(25);
        let q = bind_query(&parse_query("freq(S)").unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(&db, &catalog, 1);
        assert!(full_materialization(&q, &env).is_err());
    }
}

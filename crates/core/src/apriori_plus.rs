//! The Apriori⁺ baseline.
//!
//! "The naive algorithm … can compute all frequent, valid sets by first
//! computing all frequent sets, and then verifying whether these frequent
//! sets satisfy C" (§6.2). Implemented as the [`Optimizer`] with every
//! pushing flag disabled: the lattices run unconstrained, every constraint
//! is checked on the frequent sets afterwards, and pairs are verified
//! exhaustively. Shares all infrastructure with the optimized strategies so
//! speedup comparisons measure only the pruning, not incidental code
//! differences.

use crate::optimizer::{ExecutionOutcome, Optimizer, QueryEnv};
use cfq_constraints::BoundQuery;

/// Runs the Apriori⁺ baseline on a query.
///
/// # Panics
/// On an inconsistent environment — use
/// `Optimizer::apriori_plus().evaluate(..)` for a typed error instead.
pub fn apriori_plus(query: &BoundQuery, env: &QueryEnv<'_>) -> ExecutionOutcome {
    Optimizer::apriori_plus()
        .evaluate(query, env)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::{Catalog, CatalogBuilder, TransactionDb};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    #[test]
    fn baseline_counts_everything() {
        let cat = catalog();
        let d = db();
        let q = bind_query(
            &parse_query("max(S.Price) <= 30 & min(T.Price) >= 40").unwrap(),
            &cat,
        )
        .unwrap();
        let env = QueryEnv::new(&d, &cat, 2);
        let base = apriori_plus(&q, &env);
        let opt = Optimizer::default().evaluate(&q, &env).unwrap();
        // Identical answers…
        assert_eq!(base.s_sets, opt.s_sets);
        assert_eq!(base.t_sets, opt.t_sets);
        assert_eq!(base.pair_result.count, opt.pair_result.count);
        // …but the baseline counts strictly more sets for support.
        let base_counted = base.s_stats.support_counted + base.t_stats.support_counted;
        let opt_counted = opt.s_stats.support_counted + opt.t_stats.support_counted;
        assert!(
            base_counted > opt_counted,
            "baseline {base_counted} should exceed optimized {opt_counted}"
        );
        // The baseline does its constraint checking after the fact.
        assert!(base.s_stats.constraint_checks > 0);
    }
}

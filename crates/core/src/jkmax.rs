//! Iterative pruning with `J^k_max` (§5.2, Figures 5–6).
//!
//! For constraints like `sum(S.A) ≤ sum(T.B)` no quasi-succinct reduction
//! exists. Instead, from the frequent T-sets of each size `k` we derive a
//! shrinking series of upper bounds `V²
//! ≥ V³ ≥ …` on `max { sum(T.B) | T frequent }`, and prune candidate
//! S-sets with `sum(CS.A) > V^k` — an anti-monotone condition on
//! non-negative domains, so it composes with Apriori-style generation.
//!
//! * **Figure 5**: for each element `t_i` of `L_k` (the elements of the
//!   frequent k-sets), `N_i^k` counts the frequent k-sets containing `t_i`.
//!   For `t_i` to appear in *some* frequent set of size `k + j`, it must
//!   appear in at least `C(k+j-1, k-1)` frequent k-sets; `J_i^k` is the
//!   largest `j` passing that test, and `J^k_max = max_i J_i^k` bounds how
//!   much any frequent set can still grow.
//! * **Figure 6**: `Sum_i^k` is the best `sum(T.B)` among frequent k-sets
//!   containing `t_i`; adding the `J^k_max` largest co-occurring other
//!   elements bounds any frequent superset's sum; `V^k` is the max over
//!   `i`.

use cfq_types::{Catalog, FxHashMap, Itemset};
use cfq_types::{AttrId, ItemId};

/// Binomial coefficient with saturation (the comparison only needs
/// "≥ N_i^k", so saturating at `u64::MAX` is safe).
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1)  — keep exact by dividing
        // the running product (always divisible).
        match result.checked_mul(n - i) {
            Some(r) => result = r / (i + 1),
            None => return u64::MAX,
        }
    }
    result
}

/// The per-level `J` statistics of Figure 5.
#[derive(Clone, Debug)]
pub struct JStats {
    /// The level the statistics were computed from.
    pub k: usize,
    /// `J^k_max`: no frequent set of size > `k + j_max` exists.
    pub j_max: u64,
    /// Per-element `(t_i, N_i^k, J_i^k)`, ascending by item.
    pub per_element: Vec<(ItemId, u64, u64)>,
}

/// Computes Figure 5 from the frequent k-sets. Returns `None` when the
/// level is empty (no bound derivable).
pub fn j_stats(level_sets: &[Itemset], k: usize) -> Option<JStats> {
    if level_sets.is_empty() {
        return None;
    }
    debug_assert!(level_sets.iter().all(|s| s.len() == k));
    let mut counts: FxHashMap<ItemId, u64> = FxHashMap::default();
    for s in level_sets {
        for i in s.iter() {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut per_element: Vec<(ItemId, u64, u64)> = counts
        .into_iter()
        .map(|(item, n)| (item, n, largest_j(n, k as u64)))
        .collect();
    per_element.sort_unstable_by_key(|&(i, _, _)| i);
    let j_max = per_element.iter().map(|&(_, _, j)| j).max().unwrap_or(0);
    Some(JStats { k, j_max, per_element })
}

/// Largest `j ≥ 0` with `n ≥ C(k+j-1, k-1)` (Equation 1). `j = 0` always
/// qualifies because `C(k-1, k-1) = 1 ≤ n`.
fn largest_j(n: u64, k: u64) -> u64 {
    let mut j = 0u64;
    while binomial(k + j, k - 1) <= n {
        j += 1;
    }
    j
}

/// Computes `V^k` (Figure 6): an upper bound on `sum(T.B)` over all
/// frequent T-sets of size ≥ k, derivable from the frequent k-sets alone.
///
/// Requires a non-negative attribute domain (checked by the caller /
/// optimizer; the bound is meaningless otherwise).
pub fn v_bound(level_sets: &[Itemset], k: usize, attr: AttrId, catalog: &Catalog) -> Option<f64> {
    let stats = j_stats(level_sets, k)?;
    let j_max = stats.j_max as usize;

    // For each element: best sum among frequent k-sets containing it, plus
    // the co-occurring element universe.
    let mut best_sum: FxHashMap<ItemId, f64> = FxHashMap::default();
    let mut co: FxHashMap<ItemId, Vec<ItemId>> = FxHashMap::default();
    let mut best_set: FxHashMap<ItemId, usize> = FxHashMap::default();
    for (si, s) in level_sets.iter().enumerate() {
        let sum = catalog.sum_num(attr, s);
        for i in s.iter() {
            let cur = best_sum.entry(i).or_insert(f64::NEG_INFINITY);
            if sum > *cur {
                *cur = sum;
                best_set.insert(i, si);
            }
            co.entry(i).or_default().extend(s.iter().filter(|&x| x != i));
        }
    }

    let mut v = f64::NEG_INFINITY;
    for (i, sum) in &best_sum {
        let t_best = &level_sets[best_set[i]];
        // E_i^k: co-occurring elements not in the best set, deduplicated.
        let mut e: Vec<ItemId> = co[i].iter().copied().filter(|&x| !t_best.contains(x)).collect();
        e.sort_unstable();
        e.dedup();
        // Descending by attribute value; take the top J^k_max.
        e.sort_by(|&a, &b| {
            catalog.num(attr, b).total_cmp(&catalog.num(attr, a))
        });
        let extra: f64 = e.iter().take(j_max).map(|&x| catalog.num(attr, x)).sum();
        v = v.max(sum + extra);
    }
    (v > f64::NEG_INFINITY).then_some(v)
}

/// The evolving bound state the dovetailed executor keeps per pruned
/// variable.
///
/// One subtlety the paper's Lemma 6 glosses over: `V^k` (Figure 6) bounds
/// `sum(T.B)` only over frequent sets **of size ≥ k** — a small frequent
/// set that never extends to size `k` (its elements may not even appear in
/// `L_k`) can out-sum every deep set, and a naive running minimum of the
/// `V^k` series would undercut it, wrongly pruning its valid S partners.
/// The series therefore tracks two components and reports their maximum:
///
/// * `materialized_max` — the *exact* maximum sum over frequent sets
///   already absorbed (levels 1..k), which needs no bounding;
/// * `future` — the latest `V^k`, bounding every frequent set of size > k
///   still to come.
///
/// The combined bound is clamped to be non-increasing (each previous value
/// was itself a sound bound on everything, seen and unseen — Lemma 7's
/// monotonicity, made robust).
#[derive(Clone, Debug)]
pub struct VSeries {
    attr: AttrId,
    materialized_max: f64,
    future: f64,
    current: f64,
    history: Vec<(usize, f64)>,
}

impl VSeries {
    /// Initializes from the level-1 frequent items of the source lattice:
    /// `V¹ = Σ_{t ∈ L1} t.B` bounds every frequent set (all are subsets of
    /// `L1`; non-negative domain).
    pub fn from_l1(l1: &[ItemId], attr: AttrId, catalog: &Catalog) -> VSeries {
        let set: Itemset = l1.iter().copied().collect();
        let v1 = catalog.sum_num(attr, &set);
        let materialized_max = l1
            .iter()
            .map(|&i| catalog.num(attr, i))
            .fold(0.0f64, f64::max);
        VSeries { attr, materialized_max, future: v1, current: v1, history: vec![(1, v1)] }
    }

    /// Absorbs the frequent k-sets of the source lattice: records their
    /// exact sums as materialized and refreshes the future bound via
    /// Figure 6.
    pub fn update(&mut self, level_sets: &[Itemset], k: usize, catalog: &Catalog) {
        for s in level_sets {
            let sum = catalog.sum_num(self.attr, s);
            if sum > self.materialized_max {
                self.materialized_max = sum;
            }
        }
        if let Some(v) = v_bound(level_sets, k, self.attr, catalog) {
            self.future = v;
        } else if level_sets.is_empty() {
            // The source lattice produced nothing at this level: no
            // frequent set of size ≥ k exists, the future is empty.
            self.future = self.materialized_max;
        }
        let bound = self.materialized_max.max(self.future).min(self.current);
        self.current = bound;
        self.history.push((k, self.current));
    }

    /// The current upper bound on `sum(T.B)` over *all* frequent source
    /// sets (materialized and future).
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The exact maximum over materialized frequent sets so far.
    pub fn materialized_max(&self) -> f64 {
        self.materialized_max
    }

    /// `(k, bound)` pairs recorded so far (non-increasing).
    pub fn history(&self) -> &[(usize, f64)] {
        &self.history
    }
}

/// A refinement of Figure 6 the paper leaves on the table: instead of the
/// *global* `J^k_max`, use each element's own `J_i^k` when bounding the
/// frequent supersets containing `t_i` — a frequent set containing `t_i`
/// has size at most `k + J_i^k`, so only `J_i^k` extra elements can join.
/// Always ≤ [`v_bound`] and sound by the same argument (ablation:
/// `repro ablations`).
pub fn v_bound_per_element(
    level_sets: &[Itemset],
    k: usize,
    attr: AttrId,
    catalog: &Catalog,
) -> Option<f64> {
    let stats = j_stats(level_sets, k)?;
    let j_of: FxHashMap<ItemId, u64> =
        stats.per_element.iter().map(|&(i, _, j)| (i, j)).collect();

    let mut best_sum: FxHashMap<ItemId, f64> = FxHashMap::default();
    let mut co: FxHashMap<ItemId, Vec<ItemId>> = FxHashMap::default();
    let mut best_set: FxHashMap<ItemId, usize> = FxHashMap::default();
    for (si, s) in level_sets.iter().enumerate() {
        let sum = catalog.sum_num(attr, s);
        for i in s.iter() {
            let cur = best_sum.entry(i).or_insert(f64::NEG_INFINITY);
            if sum > *cur {
                *cur = sum;
                best_set.insert(i, si);
            }
            co.entry(i).or_default().extend(s.iter().filter(|&x| x != i));
        }
    }
    let mut v = f64::NEG_INFINITY;
    for (i, sum) in &best_sum {
        let t_best = &level_sets[best_set[i]];
        let mut e: Vec<ItemId> =
            co[i].iter().copied().filter(|&x| !t_best.contains(x)).collect();
        e.sort_unstable();
        e.dedup();
        e.sort_by(|&a, &b| catalog.num(attr, b).total_cmp(&catalog.num(attr, a)));
        let j_i = j_of[i] as usize;
        let extra: f64 = e.iter().take(j_i).map(|&x| catalog.num(attr, x)).sum();
        v = v.max(sum + extra);
    }
    (v > f64::NEG_INFINITY).then_some(v)
}

/// The count analogue of [`v_bound`], for the 2-var class-constraint
/// extension `count(S.A) ≤ count(T.B)`: an upper bound on
/// `count(distinct T.B)` over frequent T-sets of size ≥ k. Every element
/// beyond size k adds at most one distinct value, so
/// `max_k count + J^k_max` bounds all frequent supersets.
pub fn count_bound(
    level_sets: &[Itemset],
    k: usize,
    attr: Option<AttrId>,
    catalog: &Catalog,
) -> Option<u64> {
    let stats = j_stats(level_sets, k)?;
    let max_count = level_sets
        .iter()
        .map(|s| catalog.count_distinct(attr, s) as u64)
        .max()?;
    Some(max_count + stats.j_max)
}

/// The evolving `count(distinct ·)` bound — same two-component structure as
/// [`VSeries`] (exact over materialized levels, [`count_bound`] for the
/// future), reported as an `f64` so it can drive a `count(..) ≤ c`
/// pruning condition directly.
#[derive(Clone, Debug)]
pub struct CountSeries {
    attr: Option<AttrId>,
    materialized_max: u64,
    future: u64,
    current: u64,
    history: Vec<(usize, f64)>,
}

impl CountSeries {
    /// Initializes from the level-1 frequent items: every frequent set
    /// draws its values from `L1`, so `count(distinct L1.B)` bounds all.
    pub fn from_l1(l1: &[ItemId], attr: Option<AttrId>, catalog: &Catalog) -> CountSeries {
        let set: Itemset = l1.iter().copied().collect();
        let total = catalog.count_distinct(attr, &set) as u64;
        CountSeries {
            attr,
            materialized_max: if l1.is_empty() { 0 } else { 1 },
            future: total,
            current: total,
            history: vec![(1, total as f64)],
        }
    }

    /// Absorbs the frequent k-sets of the source lattice.
    pub fn update(&mut self, level_sets: &[Itemset], k: usize, catalog: &Catalog) {
        for s in level_sets {
            let c = catalog.count_distinct(self.attr, s) as u64;
            if c > self.materialized_max {
                self.materialized_max = c;
            }
        }
        if let Some(b) = count_bound(level_sets, k, self.attr, catalog) {
            self.future = b;
        } else if level_sets.is_empty() {
            self.future = self.materialized_max;
        }
        self.current = self.materialized_max.max(self.future).min(self.current);
        self.history.push((k, self.current as f64));
    }

    /// The current upper bound on `count(distinct T.B)` over all frequent
    /// source sets.
    pub fn current(&self) -> f64 {
        self.current as f64
    }

    /// `(k, bound)` pairs recorded so far (non-increasing).
    pub fn history(&self) -> &[(usize, f64)] {
        &self.history
    }
}

#[cfg(test)]
mod count_bound_tests {
    use super::*;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.cat_attr("Type", &["a", "a", "b", "b", "c", "c"]).unwrap();
        b.build()
    }

    #[test]
    fn count_bound_covers_true_max() {
        let cat = catalog();
        let ty = cat.attr("Type");
        // Downward-closed family: subsets of {0,2,4} (types a,b,c) and of
        // {1,3} (types a,b).
        let fam1: Itemset = [0u32, 2, 4].into();
        let fam2: Itemset = [1u32, 3].into();
        let mut frequent = fam1.all_nonempty_subsets();
        frequent.extend(fam2.all_nonempty_subsets());
        for k in 2..=3usize {
            let level: Vec<Itemset> =
                frequent.iter().filter(|s| s.len() == k).cloned().collect();
            if level.is_empty() {
                continue;
            }
            let b = count_bound(&level, k, ty, &cat).unwrap();
            let true_max = frequent
                .iter()
                .filter(|s| s.len() >= k)
                .map(|s| cat.count_distinct(ty, s) as u64)
                .max()
                .unwrap();
            assert!(b >= true_max, "count bound {b} below true max {true_max} at k={k}");
        }
    }

    #[test]
    fn count_series_sound_and_monotone() {
        let cat = catalog();
        let ty = cat.attr("Type");
        let fam: Itemset = [0u32, 2, 4].into();
        let frequent = fam.all_nonempty_subsets();
        let l1: Vec<ItemId> = (0..6).map(ItemId).collect();
        let mut series = CountSeries::from_l1(&l1, ty, &cat);
        assert_eq!(series.current(), 3.0); // 3 distinct types in L1
        let mut last = series.current();
        for k in 2..=4usize {
            let level: Vec<Itemset> =
                frequent.iter().filter(|s| s.len() == k).cloned().collect();
            series.update(&level, k, &cat);
            assert!(series.current() <= last);
            // True max count over all frequent sets is 3 ({0,2,4}).
            assert!(series.current() >= 3.0);
            last = series.current();
        }
        assert_eq!(series.history().len(), 4);
    }

    #[test]
    fn bare_variable_counts_items() {
        let cat = catalog();
        let fam: Itemset = [0u32, 1, 2].into();
        let frequent = fam.all_nonempty_subsets();
        let level: Vec<Itemset> = frequent.iter().filter(|s| s.len() == 2).cloned().collect();
        let b = count_bound(&level, 2, None, &cat).unwrap();
        assert!(b >= 3, "must allow the size-3 maximal set, got {b}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_types::CatalogBuilder;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(4, 7), 0);
        assert_eq!(binomial(100, 50), u64::MAX); // saturates
    }

    /// The paper's worked example: N₁⁴ = 17 frequent 4-sets containing t₁.
    /// C(6,3) = 20 > 17, so no frequent 7-set: J₁⁴ = 2.
    #[test]
    fn paper_equation1_example() {
        assert_eq!(largest_j(17, 4), 2);
        // 20 sets would allow size 7 (J = 3): C(6,3) = 20 ≤ 20, C(7,3) = 35 > 20.
        assert_eq!(largest_j(20, 4), 3);
        // A single set: J = ... C(k+j-1, k-1) ≤ 1 only for j = 0 (k ≥ 2).
        assert_eq!(largest_j(1, 4), 0);
    }

    #[test]
    fn j_stats_counts_membership() {
        // Frequent 2-sets: {1,2}, {1,3}, {2,3}, {1,4}.
        let sets: Vec<Itemset> = vec![
            [1u32, 2].into(),
            [1u32, 3].into(),
            [2u32, 3].into(),
            [1u32, 4].into(),
        ];
        let s = j_stats(&sets, 2).unwrap();
        let n_of = |i: u32| s.per_element.iter().find(|&&(x, _, _)| x == ItemId(i)).unwrap().1;
        assert_eq!(n_of(1), 3);
        assert_eq!(n_of(2), 2);
        assert_eq!(n_of(4), 1);
        // N=3, k=2: C(2,1)=2 ≤ 3, C(3,1)=3 ≤ 3, C(4,1)=4 > 3 → J=2.
        assert_eq!(s.j_max, 2);
        assert!(j_stats(&[], 2).is_none());
    }

    /// Lemma 5 (spirit): as k grows on an actual lattice, J^k_max does not
    /// allow larger maximal sets than what lower levels allowed.
    #[test]
    fn j_bound_is_sound_on_real_lattice() {
        // Universe {0..5}; "frequent" = all subsets of {0,1,2,3} (max size 4).
        let all: Itemset = (0u32..4).collect();
        for k in 2..=3usize {
            let level: Vec<Itemset> = all.subsets_of_size(k).collect();
            let s = j_stats(&level, k).unwrap();
            assert!(
                (k as u64 + s.j_max) >= 4,
                "bound k+J = {} must not be below the true max size 4",
                k as u64 + s.j_max
            );
        }
    }

    /// The paper's Figure 6 walk-through: t₁..t₁₀₀ with tᵢ.B = i; the best
    /// frequent 4-set containing t₁₀₀ is {t₁₀, t₅₀, t₈₀, t₁₀₀} (Sum = 240);
    /// J⁴max = 2; the top-2 co-occurring elements outside it are t₉₀ and
    /// t₇₀ → MaxSum = 240 + 90 + 70 = 400.
    #[test]
    fn paper_figure6_example() {
        let n = 101;
        let mut b = CatalogBuilder::new(n);
        b.num_attr("B", (0..n).map(|i| i as f64).collect()).unwrap();
        let cat = b.build();
        let attr = cat.attr("B").unwrap();
        // Frequent 4-sets: the best set for t100 is {t10, t50, t80, t100}
        // (Sum 240); t90 and t70 co-occur with t100 in cheaper sets; 14
        // further cheap sets bring N₁₀₀ to 17 so that J₁₀₀ = 2 as in the
        // paper's running example.
        let mut sets: Vec<Itemset> = vec![
            [10u32, 50, 80, 100].into(), // Sum 240 ← best for t100
            [2u32, 3, 90, 100].into(),   // Sum 195; brings t90 into E₁₀₀
            [4u32, 5, 70, 100].into(),   // Sum 179; brings t70 into E₁₀₀
        ];
        for extra in 0..14u32 {
            // Kept below item 54 so t90/t70 stay the top co-occurring
            // B-values outside the best set.
            sets.push([6 + extra, 20 + extra, 40 + extra, 100].into());
        }
        let s = j_stats(&sets, 4).unwrap();
        let (_, n100, j100) =
            *s.per_element.iter().find(|&&(x, _, _)| x == ItemId(100)).unwrap();
        assert_eq!(n100, 17);
        assert_eq!(j100, 2);
        assert_eq!(s.j_max, 2, "t100 must dominate J in this construction");
        // MaxSum for t100 = 240 + 90 + 70 = 400 (the paper's number), and
        // by construction every other element's MaxSum stays below it.
        let v = v_bound(&sets, 4, attr, &cat).unwrap();
        assert_eq!(v, 400.0);
    }

    /// Soundness: V^k upper-bounds sum over all "frequent" sets of size ≥ k
    /// in a downward-closed family.
    #[test]
    fn v_bound_soundness_brute_force() {
        let n = 8usize;
        let mut b = CatalogBuilder::new(n);
        b.num_attr("B", vec![3.0, 7.0, 1.0, 9.0, 4.0, 6.0, 2.0, 8.0]).unwrap();
        let cat = b.build();
        let attr = cat.attr("B").unwrap();
        // Downward-closed family: all subsets of {0,1,3,5,7} plus all
        // subsets of {2,4,6}.
        let fam1: Itemset = [0u32, 1, 3, 5, 7].into();
        let fam2: Itemset = [2u32, 4, 6].into();
        let mut frequent: Vec<Itemset> = fam1.all_nonempty_subsets();
        frequent.extend(fam2.all_nonempty_subsets());
        frequent.sort();
        frequent.dedup();
        for k in 2..=4usize {
            let level: Vec<Itemset> = frequent.iter().filter(|s| s.len() == k).cloned().collect();
            if level.is_empty() {
                continue;
            }
            let v = v_bound(&level, k, attr, &cat).unwrap();
            let true_max = frequent
                .iter()
                .filter(|s| s.len() >= k)
                .map(|s| cat.sum_num(attr, s))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                v >= true_max - 1e-9,
                "V^{k} = {v} below true max {true_max}"
            );
        }
    }

    /// Lemma 7: the VSeries is non-increasing.
    #[test]
    fn v_series_monotone() {
        let n = 8usize;
        let mut b = CatalogBuilder::new(n);
        b.num_attr("B", vec![3.0, 7.0, 1.0, 9.0, 4.0, 6.0, 2.0, 8.0]).unwrap();
        let cat = b.build();
        let attr = cat.attr("B").unwrap();
        let fam: Itemset = [0u32, 1, 3, 5, 7].into();
        let frequent = fam.all_nonempty_subsets();
        let l1: Vec<ItemId> = (0..n as u32).map(ItemId).collect();
        let mut series = VSeries::from_l1(&l1, attr, &cat);
        let mut last = series.current();
        for k in 2..=5usize {
            let level: Vec<Itemset> = frequent.iter().filter(|s| s.len() == k).cloned().collect();
            series.update(&level, k, &cat);
            assert!(series.current() <= last + 1e-12);
            last = series.current();
        }
        assert_eq!(series.history().len(), 5);
    }
}

#[cfg(test)]
mod soundness_regression {
    use super::*;
    use cfq_types::CatalogBuilder;

    /// A frequent *small* T-set can out-sum every deep frequent T-set. The
    /// series must never drop below its sum, even though `V^k` for large k
    /// only sees the deep (cheap) part of the lattice.
    #[test]
    fn series_never_undercuts_small_heavy_sets() {
        // Items 0,1 heavy (B=100); 2..6 cheap (B=1).
        let mut b = CatalogBuilder::new(7);
        b.num_attr("B", vec![100.0, 100.0, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        let cat = b.build();
        let attr = cat.attr("B").unwrap();
        // Downward-closed frequent family: P({0,1}) ∪ P({2,3,4,5,6}).
        let heavy: Itemset = [0u32, 1].into();
        let cheap: Itemset = (2u32..7).collect();
        let mut frequent = heavy.all_nonempty_subsets();
        frequent.extend(cheap.all_nonempty_subsets());
        let l1: Vec<ItemId> = (0..7).map(ItemId).collect();

        let mut series = VSeries::from_l1(&l1, attr, &cat);
        for k in 2..=5usize {
            let level: Vec<Itemset> =
                frequent.iter().filter(|s| s.len() == k).cloned().collect();
            series.update(&level, k, &cat);
            // max sum over ALL frequent T-sets is 200 (= {0,1}).
            assert!(
                series.current() >= 200.0,
                "V series dropped to {} at k={k}, below the frequent heavy pair's 200",
                series.current()
            );
        }
    }
}

#[cfg(test)]
mod per_element_tests {
    use super::*;
    use cfq_types::CatalogBuilder;

    fn family(cat_n: usize, masks: &[u32]) -> Vec<Itemset> {
        let mut out = Vec::new();
        for &mask in masks {
            let m: Itemset = (0..cat_n as u32).filter(|i| mask & (1 << i) != 0).collect();
            out.extend(m.all_nonempty_subsets());
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn per_element_is_tighter_and_sound() {
        let n = 8;
        let mut b = CatalogBuilder::new(n);
        b.num_attr("B", vec![3.0, 7.0, 1.0, 9.0, 4.0, 6.0, 2.0, 8.0]).unwrap();
        let cat = b.build();
        let attr = cat.attr("B").unwrap();
        let frequent = family(n, &[0b1010_1011, 0b0101_0100]);
        for k in 2..=4usize {
            let level: Vec<Itemset> =
                frequent.iter().filter(|s| s.len() == k).cloned().collect();
            if level.is_empty() {
                continue;
            }
            let global = v_bound(&level, k, attr, &cat).unwrap();
            let refined = v_bound_per_element(&level, k, attr, &cat).unwrap();
            assert!(refined <= global + 1e-9, "refined {refined} > global {global}");
            let true_max = frequent
                .iter()
                .filter(|s| s.len() >= k)
                .map(|s| cat.sum_num(attr, s))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(refined >= true_max - 1e-9, "refined bound {refined} below {true_max}");
        }
    }
}

//! The CAP lattice engine: a steppable, constraint-pushing levelwise run.
//!
//! One [`LatticeRun`] computes the frequent valid sets of one variable. The
//! four CAP strategies of \[15\] are realized as:
//!
//! * **Strategy I** (succinct + anti-monotone, e.g. `max(S.A) ≤ v`,
//!   `S.A ⊆ V`): the item universe is restricted to the `allowed` filter of
//!   the compiled [`SuccinctForm`]; nothing else changes.
//! * **Strategy II** (succinct, not anti-monotone, e.g. `min(S.A) ≤ v`):
//!   one required group `R` is pushed natively. Items are *re-ranked* so
//!   that `R` comes first; candidates are generated only with their first
//!   (lowest-rank) item in `R`, and the subset prune consults only subsets
//!   that themselves contain an `R` item (the validity oracle). With
//!   `R`-first ordering, both join parents of a valid k-set (k ≥ 3) keep
//!   the leading `R` item, so the prefix join remains complete while only
//!   valid sets are ever counted. Further required groups are enforced on
//!   output only (sound and complete, just less pruning) — the paper's
//!   experiments never need more than one group per variable.
//! * **Strategy III** (anti-monotone, not succinct, e.g. `sum(S.A) ≤ v` on
//!   non-negative domains): candidates failing the residual check are
//!   dropped before counting; anti-monotonicity makes this safe.
//! * **Strategy IV** (neither, e.g. `avg`): checked on output only (post
//!   filters), with any sound weaker constraint pushed by the form.
//!
//! The run is *steppable* — `next_candidates` / `absorb_counts` — so the
//! optimizer can dovetail two lattices over shared database scans and
//! inject quasi-succinct reductions after level 1 and `J^k_max` bounds
//! between levels (§5.2).

use cfq_constraints::{OneVar, SuccinctForm, Var};
use cfq_mining::{generate_candidates, FrequentSets, WorkStats};
use cfq_types::{Catalog, ItemId, Itemset};

/// Static configuration of one lattice.
#[derive(Clone, Debug)]
pub struct LatticeConfig {
    /// Which variable this lattice computes.
    pub var: Var,
    /// The variable's item domain (ascending).
    pub universe: Vec<ItemId>,
    /// Absolute minimum support.
    pub min_support: u64,
    /// Hard level cap (0 = unbounded).
    pub max_level: usize,
}

/// A steppable CAP lattice computation.
pub struct LatticeRun<'a> {
    cfg: LatticeConfig,
    catalog: &'a Catalog,
    form: SuccinctForm,
    /// Universe after `allowed` filtering.
    universe_eff: Vec<ItemId>,
    /// The natively pushed required group (ascending item ids).
    pushed_group: Option<Vec<ItemId>>,
    /// Item → rank (dense, `u32::MAX` = not in universe). Built lazily
    /// before level-2 generation so post-level-1 induced constraints can
    /// still choose the group.
    rank_of: Option<Vec<u32>>,
    item_of: Vec<ItemId>,
    /// Frequent sets per level in *rank* space (each level sorted).
    rank_levels: Vec<Vec<Itemset>>,
    /// Frequent sets in original item space (the public result).
    frequent: FrequentSets,
    /// Candidates awaiting counts: aligned (orig-sorted) orig and rank sets.
    pending: Option<(Vec<Itemset>, Vec<Itemset>)>,
    /// Extra anti-monotone conditions injected between levels (J^k_max).
    extra_am: Vec<OneVar>,
    /// Levels completed.
    level: usize,
    done: bool,
    stats: WorkStats,
    /// When enabled, every counted set (levels ≥ 2) is logged for audits.
    counted_log: Option<Vec<Itemset>>,
}

impl<'a> LatticeRun<'a> {
    /// Creates a run with the compiled 1-var form.
    pub fn new(cfg: LatticeConfig, form: SuccinctForm, catalog: &'a Catalog) -> Self {
        let universe_eff = form.filter_universe(&cfg.universe);
        LatticeRun {
            cfg,
            catalog,
            form,
            universe_eff,
            pushed_group: None,
            rank_of: None,
            item_of: Vec::new(),
            rank_levels: Vec::new(),
            frequent: FrequentSets::new(),
            pending: None,
            extra_am: Vec::new(),
            level: 0,
            done: false,
            stats: WorkStats::new(),
            counted_log: None,
        }
    }

    /// Enables the counted-set audit log (ccc-optimality checking).
    pub fn enable_audit_log(&mut self) {
        self.counted_log = Some(Vec::new());
    }

    /// The audit log, if enabled.
    pub fn counted_log(&self) -> Option<&[Itemset]> {
        self.counted_log.as_deref()
    }

    /// The variable this lattice computes.
    pub fn var(&self) -> Var {
        self.cfg.var
    }

    /// Whether the run has exhausted its lattice.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Levels completed so far.
    pub fn levels_done(&self) -> usize {
        self.level
    }

    /// Work statistics (scans are recorded by the executor, since they may
    /// be shared between lattices).
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// Mutable statistics access for the executor.
    pub fn stats_mut(&mut self) -> &mut WorkStats {
        &mut self.stats
    }

    /// The frequent sets found so far (original item space). Level 1 holds
    /// *all* frequent singletons of the effective universe — including ones
    /// that do not satisfy required groups — because they feed both the
    /// joins and the `L1` summaries of quasi-succinct reduction.
    pub fn frequent(&self) -> &FrequentSets {
        &self.frequent
    }

    /// `L1` — the frequent singleton items (for reduction constants).
    pub fn l1_items(&self) -> Vec<ItemId> {
        self.frequent.elements(1)
    }

    /// The compiled constraint form currently in force.
    pub fn form(&self) -> &SuccinctForm {
        &self.form
    }

    /// Injects additional 1-var conditions (quasi-succinct reductions).
    ///
    /// Must be called after level 1 has been absorbed and before level-2
    /// candidates are requested — the paper's point that reduction happens
    /// "immediately after the first iteration of counting". Conditions
    /// recompile the form; the effective universe shrinks accordingly.
    ///
    /// # Panics
    /// If called after level-2 generation has begun.
    pub fn push_conditions(&mut self, conds: &[OneVar]) {
        assert!(
            self.level <= 1 && self.rank_of.is_none() && self.pending.is_none(),
            "induced conditions must arrive right after level 1"
        );
        for c in conds {
            debug_assert_eq!(c.var(), self.cfg.var, "condition for the wrong variable");
            self.form.add(c, self.catalog);
        }
        self.form.normalize();
        self.universe_eff = self.form.filter_universe(&self.cfg.universe);
    }

    /// Injects/replaces the extra anti-monotone conditions applied to
    /// candidates from the next level on (`J^k_max`'s `sum(CS.A) ≤ V^k`).
    pub fn set_extra_am(&mut self, conds: Vec<OneVar>) {
        self.extra_am = conds;
    }

    /// Produces the next level's candidates (original item space, sorted),
    /// or an empty vector when the lattice is exhausted. The caller counts
    /// them (possibly in a scan shared with another lattice) and hands the
    /// supports back via [`Self::absorb_counts`].
    pub fn next_candidates(&mut self) -> Vec<Itemset> {
        if self.done {
            return Vec::new();
        }
        assert!(self.pending.is_none(), "absorb_counts must be called first");
        if self.cfg.max_level != 0 && self.level >= self.cfg.max_level {
            self.done = true;
            return Vec::new();
        }

        if self.level == 0 {
            if self.form.unsatisfiable() {
                self.done = true;
                return Vec::new();
            }
            let orig: Vec<Itemset> =
                self.universe_eff.iter().map(|&i| Itemset::singleton(i)).collect();
            self.pending = Some((orig.clone(), Vec::new()));
            return orig;
        }

        self.ensure_ranks();
        let prev = &self.rank_levels[self.level - 1];
        if prev.is_empty() {
            self.done = true;
            return Vec::new();
        }

        let group_len = self.pushed_group.as_ref().map(|g| g.len() as u32);
        let oracle = |sub: &Itemset| match group_len {
            None => true,
            Some(g) => sub.as_slice().first().map(|r| r.0 < g).unwrap_or(false),
        };
        let mut cands_rank = generate_candidates(prev, oracle);
        if let Some(g) = group_len {
            // At level 1 → 2 the join has no shared prefix to protect the
            // leading R item; filter explicitly. (No-op at deeper levels.)
            cands_rank.retain(|c| c.as_slice()[0].0 < g);
        }

        // Map to original item space and apply the candidate filters.
        let mut paired: Vec<(Itemset, Itemset)> = Vec::with_capacity(cands_rank.len());
        let n_checks = (self.form.residual_am.len() + self.extra_am.len()) as u64;
        let mut pruned = 0u64;
        for rank_set in cands_rank {
            let orig = self.to_orig(&rank_set);
            self.stats.record_checks(n_checks);
            let ok = self.form.admits_candidate(&orig, self.catalog)
                && self
                    .extra_am
                    .iter()
                    .all(|c| cfq_constraints::eval_one(c, &orig, self.catalog));
            if ok {
                paired.push((orig, rank_set));
            } else {
                pruned += 1;
            }
        }
        self.stats.record_pruned(pruned);
        paired.sort_by(|a, b| a.0.cmp(&b.0));
        let (orig, rank): (Vec<_>, Vec<_>) = paired.into_iter().unzip();
        if orig.is_empty() {
            self.done = true;
            return Vec::new();
        }
        if let Some(log) = &mut self.counted_log {
            log.extend(orig.iter().cloned());
        }
        self.pending = Some((orig.clone(), rank));
        orig
    }

    /// Absorbs the supports for the candidates returned by the last
    /// [`Self::next_candidates`] call.
    pub fn absorb_counts(&mut self, counts: &[u64]) {
        let (orig, rank) = self.pending.take().expect("no pending candidates");
        assert_eq!(orig.len(), counts.len(), "count vector length mismatch");
        let level = self.level + 1;
        let n_candidates = orig.len() as u64;

        let mut freq_orig: Vec<(Itemset, u64)> = Vec::new();
        let mut freq_rank: Vec<Itemset> = Vec::new();
        for (i, set) in orig.into_iter().enumerate() {
            if counts[i] >= self.cfg.min_support {
                if level > 1 {
                    freq_rank.push(rank[i].clone());
                }
                freq_orig.push((set, counts[i]));
            }
        }
        self.stats.record_level(level, n_candidates, freq_orig.len() as u64);

        if level == 1 {
            // Rank space does not exist yet; store origs, remapped later.
            self.rank_levels.push(freq_orig.iter().map(|(s, _)| s.clone()).collect());
        } else {
            freq_rank.sort();
            self.rank_levels.push(freq_rank);
        }
        let empty = freq_orig.is_empty();
        self.frequent.push_level(freq_orig);
        self.level = level;
        if empty {
            self.done = true;
        }
    }

    /// The frequent valid sets: frequent sets that lie in the (final)
    /// effective universe, satisfy every required group, pass the residual
    /// anti-monotone checks, and pass the post filters.
    pub fn valid_sets(&self) -> Vec<(Itemset, u64)> {
        self.frequent
            .iter()
            .filter(|(s, _)| self.is_valid_output(s))
            .map(|(s, n)| (s.clone(), n))
            .collect()
    }

    /// Validity test for a single frequent set (see [`Self::valid_sets`]).
    pub fn is_valid_output(&self, s: &Itemset) -> bool {
        s.iter().all(|i| self.universe_eff.binary_search(&i).is_ok())
            && self.form.satisfies_required(s)
            && self.form.admits_candidate(s, self.catalog)
            && self.form.passes_post(s, self.catalog)
    }

    fn ensure_ranks(&mut self) {
        if self.rank_of.is_some() {
            return;
        }
        // Pick the most selective (smallest) required group to push.
        self.pushed_group = self
            .form
            .required_groups
            .iter()
            .find(|g| !g.is_empty() && g.len() < self.universe_eff.len())
            .cloned();

        let n_total = self.catalog.n_items().max(
            self.universe_eff.last().map(|i| i.index() + 1).unwrap_or(0),
        );
        let mut rank_of = vec![u32::MAX; n_total];
        let mut item_of = Vec::with_capacity(self.universe_eff.len());
        match &self.pushed_group {
            Some(group) => {
                for &i in group {
                    rank_of[i.index()] = item_of.len() as u32;
                    item_of.push(i);
                }
                for &i in &self.universe_eff {
                    if rank_of[i.index()] == u32::MAX {
                        rank_of[i.index()] = item_of.len() as u32;
                        item_of.push(i);
                    }
                }
            }
            None => {
                for &i in &self.universe_eff {
                    rank_of[i.index()] = item_of.len() as u32;
                    item_of.push(i);
                }
            }
        }
        self.rank_of = Some(rank_of);
        self.item_of = item_of;

        // Remap the level-1 sets (currently in orig space) into rank space,
        // dropping singletons that fell out of the effective universe.
        if let Some(l1) = self.rank_levels.first_mut() {
            let rank_of = self.rank_of.as_ref().unwrap();
            let mut mapped: Vec<Itemset> = l1
                .iter()
                .filter_map(|s| {
                    let item = s.as_slice()[0];
                    let r = rank_of[item.index()];
                    (r != u32::MAX).then(|| Itemset::singleton(ItemId(r)))
                })
                .collect();
            mapped.sort();
            *l1 = mapped;
        }
    }

    fn to_orig(&self, rank_set: &Itemset) -> Itemset {
        Itemset::from_items(rank_set.iter().map(|r| self.item_of[r.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_mining::{count_supports, TrieCounter, SupportCounter};
    use cfq_types::{CatalogBuilder, TransactionDb};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    fn run_to_end(run: &mut LatticeRun<'_>, d: &TransactionDb) {
        loop {
            let cands = run.next_candidates();
            if cands.is_empty() {
                break;
            }
            let counts = TrieCounter.count(d, &cands);
            run.stats_mut().record_scan();
            run.absorb_counts(&counts);
        }
    }

    fn full_universe() -> Vec<ItemId> {
        (0..6).map(ItemId).collect()
    }

    fn lattice<'a>(src: &str, min_support: u64, catalog: &'a Catalog) -> LatticeRun<'a> {
        let q = bind_query(&parse_query(src).unwrap(), catalog).unwrap();
        let s_constraints: Vec<_> =
            q.one_var_for(Var::S).cloned().collect();
        let form = SuccinctForm::compile(&s_constraints, catalog);
        LatticeRun::new(
            LatticeConfig {
                var: Var::S,
                universe: full_universe(),
                min_support,
                max_level: 0,
            },
            form,
            catalog,
        )
    }

    /// Brute-force frequent valid sets.
    fn brute(src: &str, min_support: u64, cat: &Catalog, d: &TransactionDb) -> Vec<Itemset> {
        let q = bind_query(&parse_query(src).unwrap(), cat).unwrap();
        let all: Itemset = (0u32..6).collect();
        let mut out: Vec<Itemset> = all
            .all_nonempty_subsets()
            .into_iter()
            .filter(|s| d.support(s) >= min_support)
            .filter(|s| cfq_constraints::eval_all_one(&q.one_var, s, cat))
            .collect();
        out.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
        out
    }

    fn check_equivalence(src: &str, min_support: u64) {
        let cat = catalog();
        let d = db();
        let mut run = lattice(src, min_support, &cat);
        run_to_end(&mut run, &d);
        let mut got: Vec<Itemset> = run.valid_sets().into_iter().map(|(s, _)| s).collect();
        got.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
        let expected = brute(src, min_support, &cat, &d);
        assert_eq!(got, expected, "constraint `{src}` min_support={min_support}");
    }

    #[test]
    fn unconstrained_matches_apriori() {
        check_equivalence("freq(S)", 2);
        check_equivalence("freq(S)", 3);
    }

    #[test]
    fn strategy1_allowed_filter() {
        check_equivalence("max(S.Price) <= 40", 2);
        check_equivalence("S.Type subset {A, B}", 2);
        check_equivalence("S.Type disjoint {C}", 2);
        check_equivalence("min(S.Price) >= 30", 2);
    }

    #[test]
    fn strategy2_required_group() {
        check_equivalence("min(S.Price) <= 20", 2);
        check_equivalence("max(S.Price) >= 50", 2);
        check_equivalence("S.Type intersects {C}", 2);
        check_equivalence("S.Type superset {A}", 2);
        check_equivalence("20 in S.Price", 3);
    }

    #[test]
    fn strategy3_residual_am() {
        check_equivalence("sum(S.Price) <= 60", 2);
        check_equivalence("S.Type notsuperset {A, B}", 2);
        check_equivalence("count(S) <= 2", 2);
    }

    #[test]
    fn strategy4_post_filters() {
        check_equivalence("avg(S.Price) <= 25", 2);
        check_equivalence("avg(S.Price) >= 35", 2);
        check_equivalence("sum(S.Price) >= 60", 2);
        check_equivalence("count(S.Type) = 1", 2);
        check_equivalence("S.Type != {A}", 2);
    }

    #[test]
    fn combined_strategies() {
        check_equivalence("max(S.Price) <= 50 & min(S.Price) <= 20", 2);
        check_equivalence("S.Type subset {A, B} & min(S.Price) <= 10 & sum(S.Price) <= 60", 2);
        check_equivalence("min(S.Price) <= 20 & max(S.Price) >= 40", 2);
        check_equivalence("avg(S.Price) <= 30 & S.Type intersects {A}", 2);
    }

    #[test]
    fn strategy2_counts_fewer_sets_than_plain() {
        // The point of CAP: fewer support-counted sets than Apriori.
        let cat = catalog();
        let d = db();
        let mut plain = lattice("freq(S)", 2, &cat);
        run_to_end(&mut plain, &d);
        let mut constrained = lattice("min(S.Price) <= 10", 2, &cat);
        run_to_end(&mut constrained, &d);
        assert!(
            constrained.stats().support_counted < plain.stats().support_counted,
            "pushing the required group must reduce counting: {} vs {}",
            constrained.stats().support_counted,
            plain.stats().support_counted
        );
    }

    #[test]
    fn push_conditions_after_level1() {
        let cat = catalog();
        let d = db();
        let mut run = lattice("freq(S)", 2, &cat);
        // Level 1.
        let cands = run.next_candidates();
        let counts = TrieCounter.count(&d, &cands);
        run.absorb_counts(&counts);
        // Inject an induced condition (as the optimizer would): allow only
        // items with Price ≤ 30.
        let q = bind_query(&parse_query("max(S.Price) <= 30").unwrap(), &cat).unwrap();
        run.push_conditions(&q.one_var);
        run_to_end(&mut run, &d);
        for (s, _) in run.valid_sets() {
            assert!(s.iter().all(|i| cat.num(cat.attr("Price").unwrap(), i) <= 30.0));
        }
        // Equivalent to pushing it from the start.
        let mut direct = lattice("max(S.Price) <= 30", 2, &cat);
        run_to_end(&mut direct, &d);
        let a: Vec<_> = run.valid_sets();
        let b: Vec<_> = direct.valid_sets();
        assert_eq!(a, b);
    }

    #[test]
    fn extra_am_prunes_levels() {
        let cat = catalog();
        let d = db();
        let mut run = lattice("freq(S)", 2, &cat);
        let cands = run.next_candidates();
        let counts = TrieCounter.count(&d, &cands);
        run.absorb_counts(&counts);
        // Jkmax-style bound: sum(CS.Price) ≤ 50 from level 2 on.
        let q = bind_query(&parse_query("sum(S.Price) <= 50").unwrap(), &cat).unwrap();
        run.set_extra_am(q.one_var.clone());
        run_to_end(&mut run, &d);
        for (s, _) in run.frequent().iter() {
            if s.len() >= 2 {
                assert!(cat.sum_num(cat.attr("Price").unwrap(), s) <= 50.0);
            }
        }
        assert!(run.stats().pruned_candidates > 0);
    }

    #[test]
    fn max_level_caps_run() {
        let cat = catalog();
        let d = db();
        let q = bind_query(&parse_query("freq(S)").unwrap(), &cat).unwrap();
        let form = SuccinctForm::compile(&q.one_var, &cat);
        let mut run = LatticeRun::new(
            LatticeConfig { var: Var::S, universe: full_universe(), min_support: 1, max_level: 2 },
            form,
            &cat,
        );
        run_to_end(&mut run, &d);
        assert_eq!(run.frequent().n_levels(), 2);
        assert!(run.done());
    }

    #[test]
    fn unsatisfiable_form_short_circuits() {
        let cat = catalog();
        let d = db();
        let mut run = lattice("max(S.Price) <= 5", 2, &cat);
        run_to_end(&mut run, &d);
        assert!(run.valid_sets().is_empty());
        assert_eq!(run.stats().support_counted, 0);
    }

    #[test]
    fn shared_scan_dovetailing_smoke() {
        // Two lattices stepped together over one scan per round.
        let cat = catalog();
        let d = db();
        let mut a = lattice("max(S.Price) <= 40", 2, &cat);
        let mut b = lattice("min(S.Price) <= 20", 2, &cat);
        let mut scans = 0u64;
        loop {
            let ca = a.next_candidates();
            let cb = b.next_candidates();
            if ca.is_empty() && cb.is_empty() {
                break;
            }
            let counts = count_supports(&d, &[&ca, &cb]);
            scans += 1;
            if !ca.is_empty() {
                a.absorb_counts(&counts[0]);
            }
            if !cb.is_empty() {
                b.absorb_counts(&counts[1]);
            }
        }
        assert!(scans < a.stats().levels.len() as u64 + b.stats().levels.len() as u64);
        assert!(!a.valid_sets().is_empty());
        assert!(!b.valid_sets().is_empty());
    }

    #[test]
    fn audit_log_collects_counted_sets() {
        let cat = catalog();
        let d = db();
        let mut run = lattice("min(S.Price) <= 20", 2, &cat);
        run.enable_audit_log();
        run_to_end(&mut run, &d);
        let log = run.counted_log().unwrap();
        assert!(!log.is_empty());
        // Every counted set (level ≥ 2) contains a required item.
        for s in log {
            assert!(run.form().satisfies_required(s), "counted invalid set {s}");
        }
    }
}

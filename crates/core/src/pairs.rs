//! Final pair formation (the last box of Figure 7).
//!
//! Given the frequent valid S- and T-sets, form the pairs satisfying every
//! *original* 2-var constraint. This step also absorbs the looseness of any
//! non-tight or induced-weaker pruning upstream: whatever survived the
//! lattices is re-verified here, so the optimizer's answer is exact
//! regardless of how aggressive (or lazy) the pruning was.
//!
//! The cross product is the hot path of queries with weak 2-var
//! selectivity (tens of millions of candidate pairs at paper scale), so
//! constraints are *prepared* first: per-side value sets and aggregate
//! values are computed once per set, and each pair check touches only the
//! precomputed summaries. A sorted fast path answers count-only queries
//! with a single inequality constraint in `O((m+n) log n)`.

use cfq_constraints::{eval::agg_value, CmpOp, TwoVar};
use cfq_types::{Catalog, Itemset};

/// Result of pair formation.
#[derive(Clone, Debug)]
pub struct PairResult {
    /// Number of valid pairs.
    pub count: u64,
    /// Materialized pairs as `(s_index, t_index)` into the input slices —
    /// truncated at the materialization cap if one was given.
    pub pairs: Vec<(u32, u32)>,
    /// Whether `pairs` was truncated.
    pub truncated: bool,
    /// 2-var constraint evaluations performed.
    pub checks: u64,
    /// Per S-set: participates in at least one valid pair. This is exactly
    /// Definition 3's *frequent valid S-set* (a frequent partner exists).
    pub s_used: Vec<bool>,
    /// Per T-set: participates in at least one valid pair.
    pub t_used: Vec<bool>,
}

/// Keeps the flagged entries, returning the survivors and an old-index →
/// new-index remap (entries for dropped indices are unspecified). Used to
/// restrict reported sets to Definition 3's *frequent valid* sets — those
/// participating in at least one valid pair — after pair formation; the
/// optimizer and the session engine share this step, which is what makes
/// every strategy's (and the cache's) final answer identical.
pub fn compact_used(
    sets: Vec<(Itemset, u64)>,
    used: &[bool],
) -> (Vec<(Itemset, u64)>, Vec<u32>) {
    let mut remap = vec![0u32; sets.len()];
    let mut out = Vec::with_capacity(used.iter().filter(|&&u| u).count());
    for (i, entry) in sets.into_iter().enumerate() {
        if used[i] {
            remap[i] = out.len() as u32;
            out.push(entry);
        }
    }
    (out, remap)
}

/// A 2-var constraint with its per-side inputs precomputed.
enum Prepared {
    /// Domain constraint over precomputed sorted value-key sets.
    Domain { rel: cfq_constraints::SetRel, s_keys: Vec<Vec<u64>>, t_keys: Vec<Vec<u64>> },
    /// Numeric comparison over precomputed aggregate (or count) values.
    Num { op: CmpOp, s_vals: Vec<f64>, t_vals: Vec<f64> },
}

impl Prepared {
    fn build(
        c: &TwoVar,
        s_sets: &[(Itemset, u64)],
        t_sets: &[(Itemset, u64)],
        catalog: &Catalog,
    ) -> Prepared {
        match c {
            TwoVar::Domain { s_attr, rel, t_attr } => Prepared::Domain {
                rel: *rel,
                s_keys: s_sets.iter().map(|(s, _)| catalog.value_set(*s_attr, s)).collect(),
                t_keys: t_sets.iter().map(|(t, _)| catalog.value_set(*t_attr, t)).collect(),
            },
            TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => Prepared::Num {
                op: *op,
                s_vals: s_sets
                    .iter()
                    .map(|(s, _)| agg_value(*s_agg, *s_attr, s, catalog).unwrap_or(f64::NAN))
                    .collect(),
                t_vals: t_sets
                    .iter()
                    .map(|(t, _)| agg_value(*t_agg, *t_attr, t, catalog).unwrap_or(f64::NAN))
                    .collect(),
            },
            TwoVar::CountCmp { s_attr, op, t_attr } => Prepared::Num {
                op: *op,
                s_vals: s_sets
                    .iter()
                    .map(|(s, _)| catalog.count_distinct(*s_attr, s) as f64)
                    .collect(),
                t_vals: t_sets
                    .iter()
                    .map(|(t, _)| catalog.count_distinct(*t_attr, t) as f64)
                    .collect(),
            },
        }
    }

    #[inline]
    fn holds(&self, si: usize, ti: usize) -> bool {
        match self {
            Prepared::Domain { rel, s_keys, t_keys } => rel.eval(&s_keys[si], &t_keys[ti]),
            Prepared::Num { op, s_vals, t_vals } => op.eval(s_vals[si], t_vals[ti]),
        }
    }
}

/// Forms all valid pairs; materializes up to `max_materialized` of them
/// (`None` = all).
pub fn form_pairs(
    s_sets: &[(Itemset, u64)],
    t_sets: &[(Itemset, u64)],
    two_var: &[TwoVar],
    catalog: &Catalog,
    max_materialized: Option<usize>,
) -> PairResult {
    form_pairs_with(s_sets, t_sets, two_var, catalog, max_materialized, 1)
}

/// [`form_pairs`] with `threads` workers sharding the S side (0 = one per
/// core). The result is identical to sequential, including pair order.
pub fn form_pairs_with(
    s_sets: &[(Itemset, u64)],
    t_sets: &[(Itemset, u64)],
    two_var: &[TwoVar],
    catalog: &Catalog,
    max_materialized: Option<usize>,
    threads: usize,
) -> PairResult {
    let cap = max_materialized.unwrap_or(usize::MAX);
    let prepared: Vec<Prepared> =
        two_var.iter().map(|c| Prepared::build(c, s_sets, t_sets, catalog)).collect();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };

    // One S-range worth of work; returns (pairs, t_used) for the range.
    type Shard = (Vec<(u32, u32)>, Vec<bool>);
    let scan_range = |lo: usize, hi: usize| -> Shard {
        let mut pairs = Vec::new();
        let mut t_used = vec![false; t_sets.len()];
        for si in lo..hi {
            for (ti, used) in t_used.iter_mut().enumerate() {
                if prepared.iter().all(|p| p.holds(si, ti)) {
                    *used = true;
                    pairs.push((si as u32, ti as u32));
                }
            }
        }
        (pairs, t_used)
    };

    let shards: Vec<Shard> =
        if threads <= 1 || s_sets.len() < 2 * threads {
            vec![scan_range(0, s_sets.len())]
        } else {
            let n = s_sets.len();
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    if lo < hi {
                        let scan_range = &scan_range;
                        handles.push(scope.spawn(move || scan_range(lo, hi)));
                    }
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            })
        };

    let mut result = PairResult {
        count: 0,
        pairs: Vec::new(),
        truncated: false,
        checks: (s_sets.len() * t_sets.len() * prepared.len()) as u64,
        s_used: vec![false; s_sets.len()],
        t_used: vec![false; t_sets.len()],
    };
    for (pairs, t_used) in shards {
        for (acc, x) in result.t_used.iter_mut().zip(t_used) {
            *acc |= x;
        }
        result.count += pairs.len() as u64;
        for (si, ti) in pairs {
            result.s_used[si as usize] = true;
            if result.pairs.len() < cap {
                result.pairs.push((si, ti));
            } else {
                result.truncated = true;
            }
        }
    }
    result
}

/// Counts valid pairs without materializing them. With a single numeric
/// inequality constraint the count is computed by sorting one side and
/// binary-searching the other (`O((m+n) log n)` instead of `O(m·n)`).
pub fn count_pairs(
    s_sets: &[(Itemset, u64)],
    t_sets: &[(Itemset, u64)],
    two_var: &[TwoVar],
    catalog: &Catalog,
) -> u64 {
    if two_var.len() == 1 {
        if let [c] = two_var {
            if let Prepared::Num { op, s_vals, t_vals } =
                Prepared::build(c, s_sets, t_sets, catalog)
            {
                if let Some(n) = count_sorted(op, &s_vals, &t_vals) {
                    return n;
                }
            }
        }
    }
    form_pairs(s_sets, t_sets, two_var, catalog, Some(0)).count
}

/// Sorted counting for `s op t` with an inequality operator; `None` when
/// the operator is not an inequality or a NaN is present.
fn count_sorted(op: CmpOp, s_vals: &[f64], t_vals: &[f64]) -> Option<u64> {
    if !(op.is_upper() || op.is_lower()) {
        return None;
    }
    if s_vals.iter().chain(t_vals).any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted_t: Vec<f64> = t_vals.to_vec();
    sorted_t.sort_by(f64::total_cmp);
    let mut count = 0u64;
    for &s in s_vals {
        // Number of t with `s op t` via partition point.
        let n = match op {
            // s <= t: t ≥ s.
            CmpOp::Le => sorted_t.len() - sorted_t.partition_point(|&t| t < s),
            // s < t: t > s.
            CmpOp::Lt => sorted_t.len() - sorted_t.partition_point(|&t| t <= s),
            // s >= t: t ≤ s.
            CmpOp::Ge => sorted_t.partition_point(|&t| t <= s),
            // s > t: t < s.
            CmpOp::Gt => sorted_t.partition_point(|&t| t < s),
            _ => unreachable!("guarded above"),
        };
        count += n as u64;
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.cat_attr("Type", &["a", "b", "a", "b"]).unwrap();
        b.build()
    }

    fn sets(v: &[&[u32]]) -> Vec<(Itemset, u64)> {
        v.iter().map(|s| (s.iter().copied().collect(), 1)).collect()
    }

    fn two(src: &str) -> Vec<TwoVar> {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap().two_var
    }

    #[test]
    fn filters_by_two_var_constraint() {
        let cat = catalog();
        let q = two("max(S.Price) <= min(T.Price)");
        let s = sets(&[&[0], &[0, 1], &[3]]);
        let t = sets(&[&[2], &[2, 3]]);
        let r = form_pairs(&s, &t, &q, &cat, None);
        // {0} (max 10) and {0,1} (max 20) pair with both T sets (min 30);
        // {3} (max 40) pairs with neither.
        assert_eq!(r.count, 4);
        assert_eq!(r.pairs.len(), 4);
        assert!(!r.truncated);
        assert_eq!(r.checks, 6);
        assert!(r.pairs.contains(&(0, 0)));
        assert!(!r.pairs.contains(&(2, 0)));
        assert_eq!(r.s_used, vec![true, true, false]);
        assert_eq!(r.t_used, vec![true, true]);
    }

    #[test]
    fn domain_constraints_use_precomputed_keys() {
        let cat = catalog();
        let q = two("S.Type disjoint T.Type");
        let s = sets(&[&[0], &[1], &[0, 1]]); // types {a}, {b}, {a,b}
        let t = sets(&[&[2], &[3]]); // types {a}, {b}
        let r = form_pairs(&s, &t, &q, &cat, None);
        // {a}⟂{b}, {b}⟂{a}; {a,b} disjoint with nothing.
        assert_eq!(r.count, 2);
    }

    #[test]
    fn no_constraints_means_cross_product() {
        let cat = catalog();
        let s = sets(&[&[0], &[1]]);
        let t = sets(&[&[2], &[3], &[2, 3]]);
        let r = form_pairs(&s, &t, &[], &cat, None);
        assert_eq!(r.count, 6);
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn truncation_and_counting() {
        let cat = catalog();
        let s = sets(&[&[0], &[1]]);
        let t = sets(&[&[2], &[3]]);
        let r = form_pairs(&s, &t, &[], &cat, Some(2));
        assert_eq!(r.count, 4);
        assert_eq!(r.pairs.len(), 2);
        assert!(r.truncated);
        assert_eq!(count_pairs(&s, &t, &[], &cat), 4);
    }

    #[test]
    fn empty_sides() {
        let cat = catalog();
        let r = form_pairs(&[], &sets(&[&[0]]), &[], &cat, None);
        assert_eq!(r.count, 0);
        assert!(r.pairs.is_empty());
    }

    #[test]
    fn sorted_count_fast_path_matches_enumeration() {
        let cat = catalog();
        let s = sets(&[&[0], &[1], &[2], &[3], &[0, 3]]);
        let t = sets(&[&[0], &[1], &[2], &[3], &[1, 2]]);
        for src in [
            "max(S.Price) <= min(T.Price)",
            "max(S.Price) < min(T.Price)",
            "min(S.Price) >= max(T.Price)",
            "sum(S.Price) > sum(T.Price)",
            "avg(S.Price) <= avg(T.Price)",
            "count(S) <= count(T)",
        ] {
            let q = two(src);
            let fast = count_pairs(&s, &t, &q, &cat);
            let slow = form_pairs(&s, &t, &q, &cat, Some(0)).count;
            assert_eq!(fast, slow, "`{src}`");
        }
    }

    #[test]
    fn equality_ops_skip_fast_path_but_agree() {
        let cat = catalog();
        let s = sets(&[&[0], &[1]]);
        let t = sets(&[&[0], &[2]]);
        let q = two("max(S.Price) = min(T.Price)");
        assert_eq!(
            count_pairs(&s, &t, &q, &cat),
            form_pairs(&s, &t, &q, &cat, Some(0)).count
        );
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use cfq_constraints::{bind_query, parse_query};
    use cfq_types::CatalogBuilder;

    #[test]
    fn parallel_pairs_identical_to_sequential() {
        let n = 40usize;
        let mut b = CatalogBuilder::new(n);
        b.num_attr("Price", (0..n).map(|i| ((i * 13) % 60) as f64).collect()).unwrap();
        let cat = b.build();
        let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &cat)
            .unwrap();
        let sets: Vec<(Itemset, u64)> = (0..n as u32)
            .map(|i| (Itemset::from([i, (i + 1) % n as u32]), 1))
            .collect();
        let seq = form_pairs_with(&sets, &sets, &q.two_var, &cat, None, 1);
        for threads in [0usize, 2, 3, 7] {
            let par = form_pairs_with(&sets, &sets, &q.two_var, &cat, None, threads);
            assert_eq!(par.count, seq.count, "threads={threads}");
            assert_eq!(par.pairs, seq.pairs, "threads={threads}");
            assert_eq!(par.s_used, seq.s_used);
            assert_eq!(par.t_used, seq.t_used);
        }
    }

    #[test]
    fn parallel_truncation_keeps_count_exact() {
        let cat = cfq_types::Catalog::empty(10);
        let sets: Vec<(Itemset, u64)> =
            (0..10u32).map(|i| (Itemset::singleton(cfq_types::ItemId(i)), 1)).collect();
        let r = form_pairs_with(&sets, &sets, &[], &cat, Some(5), 4);
        assert_eq!(r.count, 100);
        assert_eq!(r.pairs.len(), 5);
        assert!(r.truncated);
        assert!(r.s_used.iter().all(|&u| u));
    }
}

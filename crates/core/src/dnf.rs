//! Disjunctive queries (the DNF extension of the paper's conjunction-only
//! language — §8 open problem 3).
//!
//! A DNF query's answer is the union of its disjuncts' answers. Each
//! disjunct runs through the full Figure-7 optimizer independently (each
//! gets its own reductions and bounds — they genuinely differ per
//! disjunct), and the outcomes are merged: pairs are deduplicated on the
//! `(S, T)` itemset pair, the per-side sets are rebuilt from the surviving
//! pairs, and work counters accumulate.

use crate::optimizer::{ExecutionOutcome, Optimizer, OutcomeProvenance, QueryEnv};
use crate::pairs::PairResult;
use cfq_constraints::BoundQuery;
use cfq_mining::WorkStats;
use cfq_types::{Itemset, Result};
use std::collections::{BTreeMap, BTreeSet};

impl Optimizer {
    /// Runs a disjunction of bound conjunctive queries and unions the
    /// answers.
    ///
    /// For exact pair counts run without a materialization cap
    /// (`env.max_pairs = None`); with a cap, a truncated disjunct can hide
    /// pairs from the union and the merged result is marked truncated.
    pub fn run_dnf(
        &self,
        disjuncts: &[BoundQuery],
        env: &QueryEnv<'_>,
    ) -> Result<ExecutionOutcome> {
        let mut s_supports: BTreeMap<Itemset, u64> = BTreeMap::new();
        let mut t_supports: BTreeMap<Itemset, u64> = BTreeMap::new();
        let mut pair_keys: BTreeSet<(Itemset, Itemset)> = BTreeSet::new();
        let mut s_stats = WorkStats::new();
        let mut t_stats = WorkStats::new();
        let mut scan = cfq_mining::ScanStats::default();
        let mut db_scans = 0;
        let mut v_histories = Vec::new();
        let mut checks = 0;
        let mut truncated = false;

        for q in disjuncts {
            let out = self.evaluate(q, env)?;
            truncated |= out.pair_result.truncated;
            checks += out.pair_result.checks;
            for &(si, ti) in &out.pair_result.pairs {
                let (s, s_sup) = &out.s_sets[si as usize];
                let (t, t_sup) = &out.t_sets[ti as usize];
                s_supports.insert(s.clone(), *s_sup);
                t_supports.insert(t.clone(), *t_sup);
                pair_keys.insert((s.clone(), t.clone()));
            }
            s_stats.absorb(&out.s_stats);
            t_stats.absorb(&out.t_stats);
            scan.absorb(&out.scan);
            db_scans += out.db_scans;
            v_histories.extend(out.v_histories);
        }

        // Rebuild indexed form, ordered by (size, lexicographic).
        let order = |m: &BTreeMap<Itemset, u64>| -> Vec<(Itemset, u64)> {
            let mut v: Vec<(Itemset, u64)> =
                m.iter().map(|(s, &n)| (s.clone(), n)).collect();
            v.sort_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
            v
        };
        let s_sets = order(&s_supports);
        let t_sets = order(&t_supports);
        let index = |v: &[(Itemset, u64)]| -> BTreeMap<Itemset, u32> {
            v.iter().enumerate().map(|(i, (s, _))| (s.clone(), i as u32)).collect()
        };
        let s_index = index(&s_sets);
        let t_index = index(&t_sets);
        let pairs: Vec<(u32, u32)> =
            pair_keys.iter().map(|(s, t)| (s_index[s], t_index[t])).collect();

        Ok(ExecutionOutcome {
            pair_result: PairResult {
                count: pair_keys.len() as u64,
                s_used: vec![true; s_sets.len()],
                t_used: vec![true; t_sets.len()],
                pairs,
                truncated,
                checks,
            },
            s_sets,
            t_sets,
            s_stats,
            t_stats,
            db_scans,
            scan,
            v_histories,
            provenance: OutcomeProvenance::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_constraints::{bind_dnf, eval_all_one, eval_all_two, parse_dnf, Var};
    use cfq_types::{Catalog, CatalogBuilder, TransactionDb};

    fn setup() -> (TransactionDb, Catalog) {
        let db = TransactionDb::from_u32(
            5,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2, 3, 4], &[0, 1, 2, 3]],
        );
        let mut b = CatalogBuilder::new(5);
        b.num_attr("Price", vec![5.0, 10.0, 15.0, 20.0, 25.0]).unwrap();
        b.cat_attr("Type", &["a", "b", "a", "b", "c"]).unwrap();
        (db, b.build())
    }

    /// Brute-force DNF oracle: a pair is in the answer iff some disjunct
    /// accepts it.
    fn oracle(db: &TransactionDb, cat: &Catalog, qs: &[BoundQuery], min_support: u64) -> u64 {
        let all: Itemset = (0..db.n_items() as u32).collect();
        let frequent: Vec<Itemset> = all
            .all_nonempty_subsets()
            .into_iter()
            .filter(|s| db.support(s) >= min_support)
            .collect();
        let mut count = 0u64;
        for s in &frequent {
            for t in &frequent {
                let any = qs.iter().any(|q| {
                    let s_one: Vec<_> =
                        q.one_var_for(Var::S).cloned().collect();
                    let t_one: Vec<_> =
                        q.one_var_for(Var::T).cloned().collect();
                    eval_all_one(&s_one, s, cat)
                        && eval_all_one(&t_one, t, cat)
                        && eval_all_two(&q.two_var, s, t, cat)
                });
                if any {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn dnf_matches_oracle() {
        let (db, cat) = setup();
        for src in [
            "max(S.Price) <= 10 & freq(T) | min(S.Price) >= 20 & freq(T)",
            "S.Type disjoint T.Type | S.Type = T.Type",
            "max(S.Price) <= min(T.Price) | sum(S.Price) <= sum(T.Price)",
            "freq(S) & freq(T)",
        ] {
            let dnf = parse_dnf(src).unwrap();
            let qs = bind_dnf(&dnf, &cat).unwrap();
            for min_support in [1u64, 2, 3] {
                let env = QueryEnv::new(&db, &cat, min_support);
                let out = Optimizer::default().run_dnf(&qs, &env).unwrap();
                let expected = oracle(&db, &cat, &qs, min_support);
                assert_eq!(out.pair_result.count, expected, "`{src}` @ {min_support}");
                assert_eq!(out.pair_result.pairs.len() as u64, expected);
                // Indices are valid and sets deduplicated.
                for &(si, ti) in &out.pair_result.pairs {
                    assert!((si as usize) < out.s_sets.len());
                    assert!((ti as usize) < out.t_sets.len());
                }
            }
        }
    }

    #[test]
    fn overlapping_disjuncts_deduplicate() {
        let (db, cat) = setup();
        // Identical disjuncts: union equals one of them.
        let dnf = parse_dnf("S.Type = T.Type | S.Type = T.Type").unwrap();
        let qs = bind_dnf(&dnf, &cat).unwrap();
        let env = QueryEnv::new(&db, &cat, 2);
        let both = Optimizer::default().run_dnf(&qs, &env).unwrap();
        let single = Optimizer::default().evaluate(&qs[0], &env).unwrap();
        assert_eq!(both.pair_result.count, single.pair_result.count);
    }

    #[test]
    fn single_disjunct_equals_run() {
        let (db, cat) = setup();
        let dnf = parse_dnf("max(S.Price) <= min(T.Price)").unwrap();
        let qs = bind_dnf(&dnf, &cat).unwrap();
        let env = QueryEnv::new(&db, &cat, 2);
        let dnf_out = Optimizer::default().run_dnf(&qs, &env).unwrap();
        let direct = Optimizer::default().evaluate(&qs[0], &env).unwrap();
        assert_eq!(dnf_out.pair_result.count, direct.pair_result.count);
        assert_eq!(dnf_out.s_sets, direct.s_sets);
    }
}

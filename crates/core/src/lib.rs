#![warn(missing_docs)]

//! # cfq-core
//!
//! The paper's contribution, executable:
//!
//! * [`cap`] — the CAP lattice engine with all four constraint-pushing
//!   strategies of \[15\], steppable for dovetailing.
//! * [`jkmax`] — `J^k_max` iterative pruning (§5.2, Figures 5–6).
//! * [`optimizer`] — the CFQ query optimizer of Figure 7: constraint
//!   separation, quasi-succinct reduction, weaker-constraint induction,
//!   `J^k_max` wiring, dovetailed execution, and final pair formation.
//! * [`apriori_plus`](mod@apriori_plus) — the Apriori⁺ baseline (mine everything, filter at
//!   the end); [`fm`] — the §6.2 full-materialization counter-example.
//! * [`pairs`] — frequent valid pair formation with original-constraint
//!   verification.
//! * [`rules`] — phase 2 of the paper's architecture: rules `S ⇒ T` with
//!   support/confidence/lift from the valid pairs.
//! * [`ccc`] — ccc-optimality accounting and an empirical auditor for
//!   Definition 6.

pub mod apriori_plus;
pub mod cap;
pub mod ccc;
pub mod dnf;
pub mod fm;
pub mod jkmax;
pub mod optimizer;
pub mod pairs;
pub mod report;
pub mod rules;

pub use apriori_plus::apriori_plus;
pub use fm::full_materialization;
pub use cap::{LatticeConfig, LatticeRun};
pub use jkmax::{binomial, count_bound, j_stats, v_bound, v_bound_per_element, CountSeries, JStats, VSeries};
pub use optimizer::{CfqPlan, ExecutionOutcome, JkSummary, LatticeSource, Optimizer, OutcomeProvenance, PlanTrace, QueryEnv, Strategy, StrategyKind, TraceNode};
pub use pairs::{compact_used, count_pairs, form_pairs, form_pairs_with, PairResult};
pub use rules::{form_rules, Rule, RuleConfig};

//! Model check of the chunk-sharded counter's partition/merge algebra
//! (`count_supports_with`), driven by the `cfq-model` checker.
//!
//! Neither loom nor ThreadSanitizer is available in the offline
//! toolchain, so the deterministic-interleaving checker stands in: the
//! parallel counter's result must be independent of (a) how the database
//! is partitioned into contiguous chunks and (b) the order in which
//! partial count vectors are merged. The implementation shards rows with
//! `TransactionDb::chunks`, counts each chunk in an isolated
//! thread-local buffer, and merges by commutative addition after all
//! workers join. Two models cover the two granularities:
//!
//! * a **coarse** model per partition — each worker merges its whole
//!   partial in one atomic step (sound by Lipton reduction: the merge
//!   runs under one lock in one critical section), explored over every
//!   contiguous partition into at most 4 chunks;
//! * a **fine** model for one 3-chunk partition — each worker merges
//!   one *element* per lock section, so the checker interleaves tens of
//!   thousands of distinct merge schedules against the real counter's
//!   partials.
//!
//! `scripts/ci.sh` runs this as its loom/tsan-substitute stage.

use cfq_mining::counter::count_supports_with;
use cfq_model::models::merge::MergeModel;
use cfq_model::{CheckConfig, Checker};
use cfq_types::{ItemId, Itemset, TransactionDb};

fn db() -> TransactionDb {
    TransactionDb::from_u32(
        6,
        &[&[0, 1, 2, 3], &[1, 2, 3], &[0, 2, 4], &[1, 5], &[2, 3, 4, 5], &[5], &[0, 5]],
    )
}

/// Sorted, duplicate-free candidate batch: all singletons and a spread of
/// pairs/triples.
fn candidates() -> Vec<Itemset> {
    let mut c: Vec<Itemset> = (0..6u32).map(|i| Itemset::singleton(ItemId(i))).collect();
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (0, 4), (4, 5), (1, 5)] {
        c.push([a, b].into());
    }
    c.push([1u32, 2, 3].into());
    c.push([2u32, 3, 4].into());
    c.sort();
    c.dedup();
    c
}

/// Counts one contiguous row range by rebuilding it as a standalone
/// database — the model of one worker's isolated chunk scan.
fn count_range(d: &TransactionDb, rows: std::ops::Range<usize>, cands: &[Itemset]) -> Vec<u64> {
    let sub = TransactionDb::new(
        d.n_items(),
        rows.map(|i| d.transaction(i).to_vec()).collect(),
    )
    .expect("chunk rows are valid");
    count_supports_with(&sub, &[cands], 1).remove(0)
}

#[test]
fn every_partition_and_merge_order_matches_sequential() {
    let d = db();
    let cands = candidates();
    let expected = count_supports_with(&d, &[&cands], 1).remove(0);
    let n = d.len();
    // Enumerate every contiguous partition with at most 4 chunks: choose
    // up to 3 cut positions among the n-1 row boundaries. For each, the
    // checker explores every merge schedule (whole-vector merges, so the
    // schedules are exactly the chunk permutations).
    let mut partitions = 0usize;
    for cuts in 0u32..(1 << (n - 1)) {
        if cuts.count_ones() > 3 {
            continue;
        }
        let mut bounds = vec![0usize];
        for b in 0..n - 1 {
            if cuts & (1 << b) != 0 {
                bounds.push(b + 1);
            }
        }
        bounds.push(n);
        let partials: Vec<Vec<u64>> = bounds
            .windows(2)
            .map(|w| count_range(&d, w[0]..w[1], &cands))
            .collect();
        partitions += 1;
        let chunks = partials.len() as u64;
        let model =
            MergeModel { partials, expected: expected.clone(), granularity: cands.len() };
        let out = Checker::new(CheckConfig::default()).run(&model);
        assert!(out.ok(), "partition {bounds:?}: {:?}", out.violations.first());
        assert!(out.complete, "partition {bounds:?} not exhausted");
        // Whole-vector merges: one schedule per chunk permutation.
        let factorial: u64 = (1..=chunks).product();
        assert_eq!(out.stats.interleavings, factorial, "partition {bounds:?}");
    }
    assert!(partitions > 20, "partition enumeration should be exhaustive, got {partitions}");
}

#[test]
fn fine_grained_merge_is_order_independent() {
    let d = db();
    let cands = candidates();
    let expected = count_supports_with(&d, &[&cands], 1).remove(0);
    // One 3-chunk partition, merged one element per lock section: the
    // checker covers every interleaving of 3 workers × |cands| merges.
    let bounds = [0usize, 3, 5, d.len()];
    let partials: Vec<Vec<u64>> = bounds
        .windows(2)
        .map(|w| count_range(&d, w[0]..w[1], &cands))
        .collect();
    let model = MergeModel { partials, expected, granularity: 1 };
    let out = Checker::new(CheckConfig::default()).run(&model);
    assert!(out.ok(), "{:?}", out.violations.first());
    assert!(out.complete);
    assert!(
        out.stats.interleavings >= 10_000,
        "fine-grained merge should cover ≥10k schedules, got {:?}",
        out.stats
    );
}

#[test]
fn checker_catches_a_seeded_double_merge() {
    // Teeth check: a worker that merges its first element twice must be
    // caught by the overshoot invariant in some schedule.
    let d = db();
    let cands = candidates();
    let expected = count_supports_with(&d, &[&cands], 1).remove(0);
    let mut partials: Vec<Vec<u64>> = [0usize, 3, 5, d.len()]
        .windows(2)
        .map(|w| count_range(&d, w[0]..w[1], &cands))
        .collect();
    // Seed the bug by double-counting chunk 0 (equivalent to merging it
    // twice — what a missing join would allow).
    for x in &mut partials[0] {
        *x *= 2;
    }
    let model = MergeModel { partials, expected, granularity: 1 };
    let out = Checker::new(CheckConfig::default()).run(&model);
    assert!(!out.ok(), "double merge must be caught");
}

#[test]
fn threaded_counter_is_bit_identical_to_sequential() {
    let d = db();
    let cands = candidates();
    let singles: Vec<Itemset> = (0..6u32).map(|i| Itemset::singleton(ItemId(i))).collect();
    let expected = count_supports_with(&d, &[&cands, &singles], 1);
    for threads in [0, 1, 2, 3, 4, 7, 8] {
        let got = count_supports_with(&d, &[&cands, &singles], threads);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn chunk_views_agree_with_parent_rows() {
    // The offset-sliced chunk views are the shared-memory surface of the
    // parallel counter; check they reproduce the parent rows exactly for
    // every chunk count.
    let d = db();
    for n in 1..=8 {
        let mut row = 0usize;
        for c in d.chunks(n) {
            for (i, r) in c.iter().enumerate() {
                assert_eq!(r, d.transaction(row + i));
            }
            row += c.len();
        }
        assert_eq!(row, d.len());
    }
}

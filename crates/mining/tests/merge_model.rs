//! Deterministic model of the chunk-sharded counter's partition/merge
//! algebra (`count_supports_with`).
//!
//! Neither loom nor ThreadSanitizer is available in the offline toolchain,
//! so this test checks the same property a race model would: the parallel
//! counter's result must be independent of (a) how the database is
//! partitioned into contiguous chunks and (b) the order in which partial
//! count vectors are merged. The implementation shards rows with
//! `TransactionDb::chunks`, counts each chunk in an isolated thread-local
//! buffer, and merges by commutative addition after all workers join — so
//! every partition and every merge permutation must agree with the
//! sequential count. This is exhaustively enumerated here on a small
//! database; `scripts/ci.sh` runs it as its loom/tsan-substitute stage.

use cfq_mining::counter::count_supports_with;
use cfq_types::{ItemId, Itemset, TransactionDb};

fn db() -> TransactionDb {
    TransactionDb::from_u32(
        6,
        &[&[0, 1, 2, 3], &[1, 2, 3], &[0, 2, 4], &[1, 5], &[2, 3, 4, 5], &[5], &[0, 5]],
    )
}

/// Sorted, duplicate-free candidate batch: all singletons and a spread of
/// pairs/triples.
fn candidates() -> Vec<Itemset> {
    let mut c: Vec<Itemset> = (0..6u32).map(|i| Itemset::singleton(ItemId(i))).collect();
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (0, 4), (4, 5), (1, 5)] {
        c.push([a, b].into());
    }
    c.push([1u32, 2, 3].into());
    c.push([2u32, 3, 4].into());
    c.sort();
    c.dedup();
    c
}

/// Counts one contiguous row range by rebuilding it as a standalone
/// database — the model of one worker's isolated chunk scan.
fn count_range(d: &TransactionDb, rows: std::ops::Range<usize>, cands: &[Itemset]) -> Vec<u64> {
    let sub = TransactionDb::new(
        d.n_items(),
        rows.map(|i| d.transaction(i).to_vec()).collect(),
    )
    .expect("chunk rows are valid");
    count_supports_with(&sub, &[cands], 1).remove(0)
}

/// All permutations of `0..n` by repeated insertion (n ≤ 4 here, so at
/// most 24).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut perms: Vec<Vec<usize>> = vec![Vec::new()];
    for k in 0..n {
        let mut next = Vec::new();
        for p in &perms {
            for pos in 0..=p.len() {
                let mut q = p.clone();
                q.insert(pos, k);
                next.push(q);
            }
        }
        perms = next;
    }
    perms
}

#[test]
fn every_partition_and_merge_order_matches_sequential() {
    let d = db();
    let cands = candidates();
    let expected = count_supports_with(&d, &[&cands], 1).remove(0);
    let n = d.len();
    // Enumerate every contiguous partition with at most 4 chunks: choose up
    // to 3 cut positions among the n-1 row boundaries.
    let mut partitions = 0usize;
    for cuts in 0u32..(1 << (n - 1)) {
        if cuts.count_ones() > 3 {
            continue;
        }
        let mut bounds = vec![0usize];
        for b in 0..n - 1 {
            if cuts & (1 << b) != 0 {
                bounds.push(b + 1);
            }
        }
        bounds.push(n);
        let partials: Vec<Vec<u64>> = bounds
            .windows(2)
            .map(|w| count_range(&d, w[0]..w[1], &cands))
            .collect();
        partitions += 1;
        for order in permutations(partials.len()) {
            let mut merged = vec![0u64; cands.len()];
            for &chunk in &order {
                for (acc, x) in merged.iter_mut().zip(&partials[chunk]) {
                    *acc += x;
                }
            }
            assert_eq!(
                merged, expected,
                "partition {bounds:?} merged in order {order:?} diverged"
            );
        }
    }
    assert!(partitions > 20, "partition enumeration should be exhaustive, got {partitions}");
}

#[test]
fn threaded_counter_is_bit_identical_to_sequential() {
    let d = db();
    let cands = candidates();
    let singles: Vec<Itemset> = (0..6u32).map(|i| Itemset::singleton(ItemId(i))).collect();
    let expected = count_supports_with(&d, &[&cands, &singles], 1);
    for threads in [0, 1, 2, 3, 4, 7, 8] {
        let got = count_supports_with(&d, &[&cands, &singles], threads);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn chunk_views_agree_with_parent_rows() {
    // The offset-sliced chunk views are the shared-memory surface of the
    // parallel counter; check they reproduce the parent rows exactly for
    // every chunk count.
    let d = db();
    for n in 1..=8 {
        let mut row = 0usize;
        for c in d.chunks(n) {
            for (i, r) in c.iter().enumerate() {
                assert_eq!(r, d.transaction(row + i));
            }
            row += c.len();
        }
        assert_eq!(row, d.len());
    }
}

//! Incremental maintenance of frequent sets under insertions — the FUP
//! algorithm family (Cheung, Han, Ng & Wong, ICDE 1996; the paper's
//! citation \[6\]).
//!
//! Given the frequent sets of an old database (with their exact supports)
//! and an *increment* of new transactions, FUP recomputes the frequent sets
//! of the combined database while scanning the old database as little as
//! possible:
//!
//! * Old frequent sets only need their increment supports added — one pass
//!   over the (small) increment; "losers" fall below the new threshold.
//! * A set that was *not* frequent before can only become frequent if its
//!   increment support alone covers the threshold growth
//!   (`Δsup ≥ s_new − s_old + 1`, since its old support was ≤ `s_old − 1`);
//!   only these survivors are re-counted against the old database.
//!
//! Thresholds are relative (a support fraction), as in the FUP setting —
//! absolute thresholds would not grow with the database.

use crate::candidates::generate_candidates;
use crate::counter::{SupportCounter, TrieCounter};
use crate::frequent::FrequentSets;
use crate::stats::WorkStats;
use cfq_types::{CfqError, FxHashMap, ItemId, Itemset, Result, TransactionDb};

/// Result of an incremental update.
pub struct UpdateOutcome {
    /// The frequent sets of `old ∪ delta` at the new absolute threshold.
    pub frequent: FrequentSets,
    /// The new absolute threshold `ceil(frac × (|D| + |d|))`.
    pub min_support: u64,
    /// Candidate sets that had to be re-counted against the old database
    /// (FUP's cost driver — small when the increment resembles the past).
    pub old_db_recounts: u64,
}

/// Applies the FUP update. `old` must hold the frequent sets of `old_db`
/// at threshold `ceil(support_frac × |old_db|)` with exact supports.
///
/// `stats.db_scans` counts **old-database** scans only (the expensive
/// resource FUP minimizes); increment passes are recorded per level in
/// `stats.levels`.
pub fn fup_update(
    old: &FrequentSets,
    old_db: &TransactionDb,
    delta: &TransactionDb,
    support_frac: f64,
    stats: &mut WorkStats,
) -> Result<UpdateOutcome> {
    if old_db.n_items() != delta.n_items() {
        return Err(CfqError::Config(format!(
            "increment universe ({}) differs from the old database's ({})",
            delta.n_items(),
            old_db.n_items()
        )));
    }
    if !(0.0..=1.0).contains(&support_frac) {
        return Err(CfqError::Config("support_frac must be in [0, 1]".into()));
    }
    let s_old = ((support_frac * old_db.len() as f64).ceil() as u64).max(1);
    let total = old_db.len() + delta.len();
    let s_new = ((support_frac * total as f64).ceil() as u64).max(1);
    fup_update_abs(old, old_db, delta, &[], s_old, s_new, stats)
}

/// FUP update with **absolute** thresholds and an optional item-universe
/// restriction — the form a long-lived engine needs to upgrade cached
/// lattices in place on `append`.
///
/// `old` must hold exactly the frequent sets of `old_db` at absolute
/// threshold `s_old`, restricted to subsets of `universe` (pass an empty
/// slice for the full universe); supports must be exact. `s_new` is the
/// threshold for the combined database and may not be below `s_old` —
/// lowering the threshold would require sets FUP never counted. With a
/// fixed absolute threshold (`s_new == s_old`, the engine's cache-upgrade
/// setting) the newcomer floor degenerates to 1: any set the increment
/// touches is a potential newcomer, which is still far cheaper than a full
/// re-mine because candidates stay Apriori-generated from the maintained
/// levels.
pub fn fup_update_abs(
    old: &FrequentSets,
    old_db: &TransactionDb,
    delta: &TransactionDb,
    universe: &[ItemId],
    s_old: u64,
    s_new: u64,
    stats: &mut WorkStats,
) -> Result<UpdateOutcome> {
    if old_db.n_items() != delta.n_items() {
        return Err(CfqError::Config(format!(
            "increment universe ({}) differs from the old database's ({})",
            delta.n_items(),
            old_db.n_items()
        )));
    }
    if s_old == 0 {
        return Err(CfqError::Config("s_old must be at least 1".into()));
    }
    if s_new < s_old {
        return Err(CfqError::Config(format!(
            "FUP cannot lower the threshold: s_new {s_new} < s_old {s_old} \
             (sets below the old threshold were never counted)"
        )));
    }
    // A set not frequent before (old support ≤ s_old − 1) must make up the
    // difference inside the increment.
    let newcomer_floor = s_new.saturating_sub(s_old - 1);

    let mut result = FrequentSets::new();
    let mut old_db_recounts = 0u64;
    let mut level = 0usize;
    let mut prev_frequent: Vec<(Itemset, u64)> = Vec::new();

    loop {
        level += 1;
        // Candidate pool for this level: the old frequent k-sets (exact old
        // supports known) plus the Apriori join of the *new* (k−1)-level.
        let mut olds: Vec<(Itemset, u64)> = old.level(level).to_vec();
        let old_index: FxHashMap<&Itemset, u64> =
            olds.iter().map(|(s, n)| (s, *n)).collect();

        let newcomers: Vec<Itemset> = if level == 1 {
            let known: std::collections::BTreeSet<&Itemset> =
                olds.iter().map(|(s, _)| s).collect();
            let singletons: Vec<Itemset> = if universe.is_empty() {
                (0..old_db.n_items() as u32)
                    .map(|i| Itemset::singleton(ItemId(i)))
                    .collect()
            } else {
                universe.iter().map(|&i| Itemset::singleton(i)).collect()
            };
            singletons.into_iter().filter(|s| !known.contains(s)).collect()
        } else {
            let prev_sets: Vec<Itemset> =
                prev_frequent.iter().map(|(s, _)| s.clone()).collect();
            generate_candidates(&prev_sets, |_| true)
                .into_iter()
                .filter(|c| !old_index.contains_key(c))
                .collect()
        };

        if olds.is_empty() && newcomers.is_empty() {
            break;
        }

        // One pass over the increment for everything at this level.
        let old_sets: Vec<Itemset> = olds.iter().map(|(s, _)| s.clone()).collect();
        let delta_old = TrieCounter.count(delta, &old_sets);
        let delta_new = TrieCounter.count(delta, &newcomers);
        stats.record_level(
            level,
            (old_sets.len() + newcomers.len()) as u64,
            0, // frequent recorded below once known
        );

        let mut frequent: Vec<(Itemset, u64)> = Vec::new();
        for ((s, old_sup), d) in olds.drain(..).zip(delta_old) {
            let sup = old_sup + d;
            if sup >= s_new {
                frequent.push((s, sup));
            }
        }

        // Newcomers: filter by the increment floor, then re-count the
        // survivors against the old database (the only old-DB touch).
        let survivors: Vec<(Itemset, u64)> = newcomers
            .into_iter()
            .zip(delta_new)
            .filter(|&(_, d)| d >= newcomer_floor)
            .collect();
        if !survivors.is_empty() {
            old_db_recounts += survivors.len() as u64;
            let sets: Vec<Itemset> = survivors.iter().map(|(s, _)| s.clone()).collect();
            let old_counts = TrieCounter.count(old_db, &sets);
            stats.record_scan();
            for ((s, d), old_sup) in survivors.into_iter().zip(old_counts) {
                let sup = old_sup + d;
                if sup >= s_new {
                    frequent.push((s, sup));
                }
            }
        }

        if let Some(last) = stats.levels.last_mut() {
            last.frequent = frequent.len() as u64;
        }
        if frequent.is_empty() {
            break;
        }
        frequent.sort_by(|a, b| a.0.cmp(&b.0));
        result.push_level(frequent.clone());
        prev_frequent = frequent;
    }

    Ok(UpdateOutcome { frequent: result, min_support: s_new, old_db_recounts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    fn combine(a: &TransactionDb, b: &TransactionDb) -> TransactionDb {
        let mut rows: Vec<Vec<ItemId>> = a.iter().map(|t| t.to_vec()).collect();
        rows.extend(b.iter().map(|t| t.to_vec()));
        TransactionDb::new(a.n_items(), rows).unwrap()
    }

    fn mine(db: &TransactionDb, frac: f64) -> FrequentSets {
        let s = ((frac * db.len() as f64).ceil() as u64).max(1);
        let mut stats = WorkStats::new();
        apriori(db, &AprioriConfig::new(s), &mut stats)
    }

    fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
        fs.iter().map(|(s, n)| (s.clone(), n)).collect()
    }

    #[test]
    fn matches_full_remine_on_fixed_case() {
        let old_db = TransactionDb::from_u32(
            5,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2, 3, 4], &[0, 1, 2]],
        );
        let delta = TransactionDb::from_u32(5, &[&[3, 4], &[0, 3, 4], &[3, 4]]);
        for frac in [0.2f64, 0.3, 0.5] {
            let old = mine(&old_db, frac);
            let mut stats = WorkStats::new();
            let got = fup_update(&old, &old_db, &delta, frac, &mut stats).unwrap();
            let expected = mine(&combine(&old_db, &delta), frac);
            assert_eq!(collect(&got.frequent), collect(&expected), "frac={frac}");
        }
    }

    #[test]
    fn newcomers_are_found() {
        // Items 3,4 infrequent before; the increment makes {3,4} frequent.
        let old_db = TransactionDb::from_u32(
            5,
            &[&[0, 1], &[0, 1], &[0, 1], &[0, 1], &[3, 4]],
        );
        let delta = TransactionDb::from_u32(5, &[&[3, 4], &[3, 4], &[3, 4]]);
        let frac = 0.4;
        let old = mine(&old_db, frac);
        assert!(!old.contains(&[3u32, 4].into()));
        let mut stats = WorkStats::new();
        let got = fup_update(&old, &old_db, &delta, frac, &mut stats).unwrap();
        assert!(got.frequent.contains(&[3u32, 4].into()));
        assert!(got.old_db_recounts > 0, "newcomers require an old-db recount");
    }

    #[test]
    fn losers_are_dropped() {
        // {0,1} frequent before; a large unrelated increment pushes the
        // threshold up and {0,1} out.
        let old_db = TransactionDb::from_u32(4, &[&[0, 1], &[0, 1], &[2, 3], &[2, 3], &[2, 3]]);
        let delta =
            TransactionDb::from_u32(4, &[&[2, 3], &[2, 3], &[2, 3], &[2, 3], &[2, 3]]);
        let frac = 0.4;
        let old = mine(&old_db, frac);
        assert!(old.contains(&[0u32, 1].into()));
        let mut stats = WorkStats::new();
        let got = fup_update(&old, &old_db, &delta, frac, &mut stats).unwrap();
        assert!(!got.frequent.contains(&[0u32, 1].into()));
        assert!(got.frequent.contains(&[2u32, 3].into()));
    }

    #[test]
    fn empty_delta_is_identity_when_threshold_stable() {
        let old_db = TransactionDb::from_u32(4, &[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 1, 2]]);
        let delta = TransactionDb::new(4, Vec::new()).unwrap();
        let frac = 0.5;
        let old = mine(&old_db, frac);
        let mut stats = WorkStats::new();
        let got = fup_update(&old, &old_db, &delta, frac, &mut stats).unwrap();
        assert_eq!(collect(&got.frequent), collect(&old));
        assert_eq!(stats.db_scans, 0, "no old-db rescan needed");
    }

    #[test]
    fn randomized_agreement_with_remine() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(808);
        for trial in 0..20 {
            let n_items = rng.gen_range(4..9);
            let mk = |rng: &mut StdRng, n_tx: usize| {
                let txs: Vec<Vec<ItemId>> = (0..n_tx)
                    .map(|_| {
                        (0..rng.gen_range(1..=n_items))
                            .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                            .collect()
                    })
                    .collect();
                TransactionDb::new(n_items, txs).unwrap()
            };
            let n_old = rng.gen_range(4..25);
            let n_delta = rng.gen_range(1..15);
            let old_db = mk(&mut rng, n_old);
            let delta = mk(&mut rng, n_delta);
            let frac = rng.gen_range(0.1..0.6);
            let old = mine(&old_db, frac);
            let mut stats = WorkStats::new();
            let got = fup_update(&old, &old_db, &delta, frac, &mut stats).unwrap();
            let expected = mine(&combine(&old_db, &delta), frac);
            assert_eq!(
                collect(&got.frequent),
                collect(&expected),
                "trial {trial} frac={frac}"
            );
        }
    }

    #[test]
    fn abs_fixed_threshold_with_universe_matches_remine() {
        // The engine's cache-upgrade setting: absolute threshold held fixed
        // across the append, lattice restricted to an item universe.
        let old_db = TransactionDb::from_u32(
            6,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2, 5], &[2, 3, 4], &[0, 1, 2]],
        );
        let delta = TransactionDb::from_u32(6, &[&[3, 4, 5], &[0, 3, 4], &[1, 3, 4]]);
        let universe = vec![ItemId(1), ItemId(2), ItemId(3), ItemId(4)];
        for s in [1u64, 2, 3] {
            let mut stats = WorkStats::new();
            let old = apriori(
                &old_db,
                &AprioriConfig::new(s).with_universe(universe.clone()),
                &mut stats,
            );
            let mut up_stats = WorkStats::new();
            let got =
                fup_update_abs(&old, &old_db, &delta, &universe, s, s, &mut up_stats).unwrap();
            let mut re_stats = WorkStats::new();
            let expected = apriori(
                &combine(&old_db, &delta),
                &AprioriConfig::new(s).with_universe(universe.clone()),
                &mut re_stats,
            );
            assert_eq!(collect(&got.frequent), collect(&expected), "s={s}");
            assert_eq!(got.min_support, s);
            // Nothing outside the universe sneaks in.
            for (set, _) in got.frequent.iter() {
                assert!(set.iter().all(|i| universe.contains(&i)), "s={s}: {set}");
            }
        }
    }

    #[test]
    fn validation_errors() {
        let a = TransactionDb::from_u32(3, &[&[0]]);
        let b = TransactionDb::from_u32(4, &[&[0]]);
        let old = mine(&a, 0.5);
        let mut stats = WorkStats::new();
        assert!(fup_update(&old, &a, &b, 0.5, &mut stats).is_err());
        assert!(fup_update(&old, &a, &a, 1.5, &mut stats).is_err());
        // Absolute form: the threshold may not decrease, and s_old ≥ 1.
        assert!(fup_update_abs(&old, &a, &a, &[], 2, 1, &mut stats).is_err());
        assert!(fup_update_abs(&old, &a, &a, &[], 0, 1, &mut stats).is_err());
    }
}

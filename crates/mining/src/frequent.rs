//! The levelled collection of frequent sets produced by a lattice run.

use cfq_types::{FxHashMap, ItemId, Itemset};

/// Frequent sets organized by level (cardinality), with support lookup.
///
/// Levels are 1-based: `level(1)` holds the frequent singletons (`L1` in the
/// paper, whose elements feed quasi-succinct reduction), `level(k)` the
/// frequent k-sets (whose element summary `L_k` feeds `J^k_max` pruning).
#[derive(Clone, Default)]
pub struct FrequentSets {
    levels: Vec<Vec<(Itemset, u64)>>,
    index: FxHashMap<Itemset, u64>,
}

impl FrequentSets {
    /// An empty collection.
    pub fn new() -> Self {
        FrequentSets::default()
    }

    /// Appends the next level. `sets` must be the frequent sets of level
    /// `n_levels() + 1`, sorted, with their supports.
    pub fn push_level(&mut self, sets: Vec<(Itemset, u64)>) {
        let expected = self.levels.len() + 1;
        debug_assert!(sets.iter().all(|(s, _)| s.len() == expected));
        debug_assert!(sets.windows(2).all(|w| w[0].0 < w[1].0));
        for (s, sup) in &sets {
            self.index.insert(s.clone(), *sup);
        }
        self.levels.push(sets);
    }

    /// Number of levels stored (the size of the largest frequent set).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// The frequent k-sets with supports (empty slice when k is out of
    /// range; `k` is 1-based).
    pub fn level(&self, k: usize) -> &[(Itemset, u64)] {
        if k == 0 || k > self.levels.len() {
            &[]
        } else {
            &self.levels[k - 1]
        }
    }

    /// Just the itemsets of level k.
    pub fn level_sets(&self, k: usize) -> Vec<Itemset> {
        self.level(k).iter().map(|(s, _)| s.clone()).collect()
    }

    /// Approximate heap footprint in bytes — the accounting unit of the
    /// engine's LRU cache budget. Counts each stored set twice (levels +
    /// support index) plus per-entry container overhead; deliberately a
    /// slight over-estimate so the budget errs towards evicting.
    pub fn approx_bytes(&self) -> usize {
        let per_entry =
            std::mem::size_of::<Itemset>() + std::mem::size_of::<u64>() + std::mem::size_of::<ItemId>();
        let mut bytes = std::mem::size_of::<Self>();
        for level in &self.levels {
            for (s, _) in level {
                // Itemset header + items, once in the level vec and once in
                // the index key.
                bytes += 2 * (per_entry + s.len() * std::mem::size_of::<ItemId>());
            }
        }
        bytes
    }

    /// Whether `set` is frequent.
    pub fn contains(&self, set: &Itemset) -> bool {
        self.index.contains_key(set)
    }

    /// The support of `set`, if frequent.
    pub fn support(&self, set: &Itemset) -> Option<u64> {
        self.index.get(set).copied()
    }

    /// Iterates all frequent sets across levels (ascending level, then
    /// lexicographic).
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> {
        self.levels.iter().flatten().map(|(s, n)| (s, *n))
    }

    /// Total number of frequent sets.
    pub fn total(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// `L_k` as the paper uses it: the set of all *elements* contained in
    /// any frequent set of size k, ascending. `elements(1)` is `L1`.
    pub fn elements(&self, k: usize) -> Vec<ItemId> {
        let mut v: Vec<ItemId> =
            self.level(k).iter().flat_map(|(s, _)| s.iter()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Drops all levels above `k` (used by tests constructing partial
    /// lattices) — keeps index entries consistent.
    pub fn truncate(&mut self, k: usize) {
        while self.levels.len() > k {
            let popped = self.levels.pop().unwrap();
            for (s, _) in popped {
                self.index.remove(&s);
            }
        }
    }
}

impl std::fmt::Debug for FrequentSets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrequentSets[")?;
        for (k, lvl) in self.levels.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "L{}:{}", k + 1, lvl.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrequentSets {
        let mut fs = FrequentSets::new();
        fs.push_level(vec![
            ([1u32].into(), 5),
            ([2u32].into(), 4),
            ([3u32].into(), 3),
        ]);
        fs.push_level(vec![([1u32, 2].into(), 3), ([2u32, 3].into(), 2)]);
        fs
    }

    #[test]
    fn levels_and_lookup() {
        let fs = sample();
        assert_eq!(fs.n_levels(), 2);
        assert_eq!(fs.level(1).len(), 3);
        assert_eq!(fs.level(2).len(), 2);
        assert!(fs.level(3).is_empty());
        assert!(fs.level(0).is_empty());
        assert!(fs.contains(&[1u32, 2].into()));
        assert!(!fs.contains(&[1u32, 3].into()));
        assert_eq!(fs.support(&[2u32].into()), Some(4));
        assert_eq!(fs.support(&[9u32].into()), None);
        assert_eq!(fs.total(), 5);
    }

    #[test]
    fn elements_summary() {
        let fs = sample();
        assert_eq!(fs.elements(1), vec![ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(fs.elements(2), vec![ItemId(1), ItemId(2), ItemId(3)]);
        assert!(fs.elements(5).is_empty());
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let empty = FrequentSets::new();
        let fs = sample();
        assert!(fs.approx_bytes() > empty.approx_bytes());
        let mut bigger = sample();
        bigger.push_level(vec![([1u32, 2, 3].into(), 2)]);
        assert!(bigger.approx_bytes() > fs.approx_bytes());
    }

    #[test]
    fn iteration_order() {
        let fs = sample();
        let all: Vec<_> = fs.iter().map(|(s, n)| (s.clone(), n)).collect();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], ([1u32].into(), 5));
        assert_eq!(all[3], ([1u32, 2].into(), 3));
    }

    #[test]
    fn truncate_drops_index_too() {
        let mut fs = sample();
        fs.truncate(1);
        assert_eq!(fs.n_levels(), 1);
        assert!(!fs.contains(&[1u32, 2].into()));
        assert!(fs.contains(&[1u32].into()));
    }
}

impl FrequentSets {
    /// The *maximal* frequent sets: those with no frequent proper superset
    /// (Bayardo's long-pattern representation, the paper's citation \[3\]).
    /// The downward closure of the maximal sets regenerates the full
    /// collection (without supports).
    pub fn maximal(&self) -> Vec<Itemset> {
        let mut out = Vec::new();
        for k in 1..=self.n_levels() {
            let next: &[(Itemset, u64)] = self.level(k + 1);
            for (s, _) in self.level(k) {
                let has_super = next.iter().any(|(sup, _)| s.is_subset_of(sup));
                if !has_super {
                    out.push(s.clone());
                }
            }
        }
        out
    }

    /// The *closed* frequent sets: those with no frequent proper superset of
    /// the **same support** (Pasquier et al.'s lossless condensation — the
    /// closed sets plus their supports determine every frequent set's
    /// support).
    pub fn closed(&self) -> Vec<(Itemset, u64)> {
        let mut out = Vec::new();
        for k in 1..=self.n_levels() {
            let next: &[(Itemset, u64)] = self.level(k + 1);
            for (s, sup) in self.level(k) {
                let absorbed = next
                    .iter()
                    .any(|(bigger, bsup)| bsup == sup && s.is_subset_of(bigger));
                if !absorbed {
                    out.push((s.clone(), *sup));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod condensation_tests {
    use super::*;

    /// L1: {1}:5 {2}:4 {3}:3 — L2: {1,2}:4 {2,3}:2.
    fn sample() -> FrequentSets {
        let mut fs = FrequentSets::new();
        fs.push_level(vec![
            ([1u32].into(), 5),
            ([2u32].into(), 4),
            ([3u32].into(), 3),
        ]);
        fs.push_level(vec![([1u32, 2].into(), 4), ([2u32, 3].into(), 2)]);
        fs
    }

    #[test]
    fn maximal_sets() {
        let fs = sample();
        let max = fs.maximal();
        // {3} is maximal? No: {2,3} ⊇ {3} is frequent. {1},{2} absorbed by
        // {1,2}. Maximal = {1,2}, {2,3}.
        assert_eq!(max, vec![Itemset::from([1u32, 2]), Itemset::from([2u32, 3])]);
    }

    #[test]
    fn closed_sets() {
        let fs = sample();
        let closed = fs.closed();
        // {2} (sup 4) is absorbed by {1,2} (sup 4); {1} (5) and {3} (3)
        // survive; both 2-sets survive.
        let names: Vec<Itemset> = closed.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(
            names,
            vec![
                Itemset::from([1u32]),
                Itemset::from([3u32]),
                Itemset::from([1u32, 2]),
                Itemset::from([2u32, 3]),
            ]
        );
    }

    #[test]
    fn downward_closure_of_maximal_covers_everything() {
        let fs = sample();
        let max = fs.maximal();
        for (s, _) in fs.iter() {
            assert!(
                max.iter().any(|m| s.is_subset_of(m)),
                "{s} not covered by any maximal set"
            );
        }
    }

    #[test]
    fn closed_preserve_support_information() {
        // Every frequent set's support equals the max support among closed
        // supersets... (min support among closed supersets is the set's
        // support; actually it is the MAX support of closed sets containing
        // it). Verify the reconstruction property.
        let fs = sample();
        let closed = fs.closed();
        for (s, sup) in fs.iter() {
            let reconstructed = closed
                .iter()
                .filter(|(c, _)| s.is_subset_of(c))
                .map(|&(_, csup)| csup)
                .max()
                .expect("every frequent set has a closed superset");
            assert_eq!(reconstructed, sup, "support reconstruction failed for {s}");
        }
    }
}

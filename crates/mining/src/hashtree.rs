//! The classic Apriori hash tree (Agrawal & Srikant, VLDB 1994 §2.1.2).
//!
//! Interior nodes hash the next item into a fixed fan-out of buckets;
//! leaves hold candidate lists and split into interior nodes when they
//! overflow. Counting walks each transaction through the tree: at depth d
//! an interior node is entered once per distinct transaction item (the
//! classic "hash every remaining item" step), and at a leaf every stored
//! candidate is verified against the transaction.
//!
//! Kept alongside the prefix-trie counter both as a faithful piece of the
//! period's standard machinery and as a benchmark comparison point; their
//! agreement is property-tested.

use crate::counter::SupportCounter;
use cfq_types::transaction::contains_sorted;
use cfq_types::{ItemId, Itemset, TransactionDb};

const FANOUT: usize = 64;
const LEAF_CAPACITY: usize = 16;

/// Hash-tree based [`SupportCounter`].
#[derive(Default, Clone, Copy, Debug)]
pub struct HashTreeCounter;

enum Node {
    Interior(Box<[usize; FANOUT]>),
    Leaf(Vec<u32>),
}

struct HashTree<'a> {
    nodes: Vec<Node>,
    candidates: &'a [Itemset],
    k: usize,
}

const NO_NODE: usize = usize::MAX;

impl<'a> HashTree<'a> {
    fn hash(item: ItemId) -> usize {
        (item.0 as usize) % FANOUT
    }

    fn build(candidates: &'a [Itemset], k: usize) -> HashTree<'a> {
        let mut tree =
            HashTree { nodes: vec![Node::Leaf(Vec::new())], candidates, k };
        for ci in 0..candidates.len() {
            tree.insert(ci as u32);
        }
        tree
    }

    fn insert(&mut self, ci: u32) {
        self.insert_from(0, 0, ci);
    }

    /// Inserts candidate `ci` starting from `node` at `depth`, descending
    /// interior nodes by hashing the candidate's item at each depth and
    /// splitting overflowing leaves (unless all `k` items are consumed, in
    /// which case collisions coexist in the leaf).
    fn insert_from(&mut self, mut node: usize, mut depth: usize, ci: u32) {
        loop {
            if matches!(self.nodes[node], Node::Interior(_)) {
                let item = self.candidates[ci as usize].as_slice()[depth];
                let b = Self::hash(item);
                let existing = match &self.nodes[node] {
                    Node::Interior(children) => children[b],
                    Node::Leaf(_) => unreachable!(),
                };
                node = if existing == NO_NODE {
                    let idx = self.nodes.len();
                    self.nodes.push(Node::Leaf(Vec::new()));
                    match &mut self.nodes[node] {
                        Node::Interior(children) => children[b] = idx,
                        Node::Leaf(_) => unreachable!(),
                    }
                    idx
                } else {
                    existing
                };
                depth += 1;
                continue;
            }
            // Leaf: store, then split on overflow.
            let needs_split = match &mut self.nodes[node] {
                Node::Leaf(list) => {
                    list.push(ci);
                    list.len() > LEAF_CAPACITY && depth < self.k
                }
                Node::Interior(_) => unreachable!(),
            };
            if needs_split {
                let spilled = match &mut self.nodes[node] {
                    Node::Leaf(list) => std::mem::take(list),
                    Node::Interior(_) => unreachable!(),
                };
                self.nodes[node] = Node::Interior(Box::new([NO_NODE; FANOUT]));
                for c in spilled {
                    self.insert_from(node, depth, c);
                }
            }
            return;
        }
    }

    fn count_transaction(&self, t: &[ItemId], counts: &mut [u64]) {
        self.walk(0, t, 0, counts);
    }

    /// At an interior node of depth d, hash each remaining transaction item
    /// and recurse; at a leaf, verify candidates by containment.
    fn walk(&self, node: usize, t: &[ItemId], from: usize, counts: &mut [u64]) {
        match &self.nodes[node] {
            Node::Leaf(list) => {
                for &ci in list {
                    if contains_sorted(t, self.candidates[ci as usize].as_slice()) {
                        counts[ci as usize] += 1;
                    }
                }
            }
            Node::Interior(children) => {
                // Visit each bucket at most once per distinct hash value.
                let mut visited = [false; FANOUT];
                for (pos, &item) in t.iter().enumerate().skip(from) {
                    let b = Self::hash(item);
                    if visited[b] || children[b] == NO_NODE {
                        continue;
                    }
                    visited[b] = true;
                    self.walk(children[b], t, pos + 1, counts);
                }
            }
        }
    }
}

impl SupportCounter for HashTreeCounter {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        let mut counts = vec![0u64; candidates.len()];
        if candidates.is_empty() {
            return counts;
        }
        let k = candidates.iter().map(|c| c.len()).max().unwrap_or(0);
        let tree = HashTree::build(candidates, k);
        for t in db.iter() {
            tree.count_transaction(t, &mut counts);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::NaiveCounter;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            10,
            &[
                &[0, 1, 2, 3, 8],
                &[1, 2, 3, 9],
                &[0, 2, 4, 6],
                &[1, 2, 5, 7],
                &[2, 3, 4, 5, 8, 9],
                &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            ],
        )
    }

    fn sets(v: &[&[u32]]) -> Vec<Itemset> {
        v.iter().map(|s| s.iter().copied().collect()).collect()
    }

    #[test]
    fn matches_naive_on_small_batch() {
        let d = db();
        let cands = sets(&[&[0, 1], &[1, 2], &[2, 3], &[8, 9], &[0, 9]]);
        assert_eq!(HashTreeCounter.count(&d, &cands), NaiveCounter.count(&d, &cands));
    }

    #[test]
    fn handles_leaf_splits() {
        let d = db();
        // More than LEAF_CAPACITY candidates with colliding first-item
        // hashes force splits.
        let cands: Vec<Itemset> = (0..10u32)
            .flat_map(|a| (0..3u32).map(move |b| [a % 10, (a + b + 1) % 10]))
            .map(|pair| pair.into_iter().collect::<Itemset>())
            .filter(|s: &Itemset| s.len() == 2)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert!(cands.len() > LEAF_CAPACITY);
        assert_eq!(HashTreeCounter.count(&d, &cands), NaiveCounter.count(&d, &cands));
    }

    #[test]
    fn deep_candidates_with_hash_collisions() {
        let d = db();
        // Items 0 and 8 collide (mod 8), 1 and 9 collide.
        let cands = sets(&[&[0, 1, 2], &[0, 8, 9], &[1, 8, 9], &[0, 1, 8, 9]]);
        assert_eq!(HashTreeCounter.count(&d, &cands), NaiveCounter.count(&d, &cands));
    }

    #[test]
    fn randomized_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(321);
        for _ in 0..25 {
            let n_items = rng.gen_range(4usize..20);
            let txs: Vec<Vec<ItemId>> = (0..rng.gen_range(1..40))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items.min(12)))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let k = rng.gen_range(1..4usize);
            let mut cands: Vec<Itemset> = (0..rng.gen_range(1..40))
                .map(|_| (0..k).map(|_| rng.gen_range(0..n_items as u32)).collect())
                .collect();
            cands.sort();
            cands.dedup();
            cands.retain(|c: &Itemset| !c.is_empty());
            assert_eq!(
                HashTreeCounter.count(&d, &cands),
                NaiveCounter.count(&d, &cands)
            );
        }
    }
}

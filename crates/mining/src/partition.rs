//! The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995),
//! cited by the paper's related work as one of the Apriori-era performance
//! techniques.
//!
//! Partition mines frequent sets in exactly **two** database scans:
//!
//! 1. Split the database into `p` in-memory partitions; mine each
//!    partition's *locally frequent* sets with a proportionally scaled
//!    threshold. Any globally frequent set is locally frequent in at least
//!    one partition (pigeonhole on support fractions), so the union of the
//!    local results is a complete candidate superset.
//! 2. One global counting pass over all candidates; keep those meeting the
//!    global threshold.
//!
//! Local mining here runs levelwise against a per-partition vertical
//! index — tidsets or bitmaps, following the injected
//! [`CountingBackend`] (the original paper also works vertically). The
//! two-scan property is what matters to the CFQ paper's dovetailing/I-O
//! discussion, so [`WorkStats::db_scans`] records exactly 2 for the
//! global database; per-partition counting work lands in
//! [`WorkStats::support_counted`].

use crate::backend::CountingBackend;
use crate::bitmap::{BitmapCounter, BitmapIndex};
use crate::candidates::generate_candidates;
use crate::counter::{SupportCounter, TrieCounter};
use crate::frequent::FrequentSets;
use crate::stats::WorkStats;
use crate::vertical::{TidsetIndex, VerticalCounter};
use cfq_types::{ItemId, Itemset, TransactionDb};

/// Configuration of a Partition run.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Item universe (empty = all items).
    pub universe: Vec<ItemId>,
    /// Absolute global minimum support.
    pub min_support: u64,
    /// Number of partitions (clamped to at least 1 and at most the number
    /// of transactions).
    pub n_partitions: usize,
    /// Counting backend for the per-partition local mining (`Auto`
    /// resolves to bitmaps: partitions are in-memory and dense). The
    /// global Phase II pass stays a single horizontal scan — that is the
    /// algorithm's defining property.
    pub backend: CountingBackend,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            universe: Vec::new(),
            min_support: 1,
            n_partitions: 1,
            backend: CountingBackend::Tidset,
        }
    }
}

/// Runs the Partition algorithm; the result equals plain Apriori's.
pub fn partition_mine(
    db: &TransactionDb,
    cfg: &PartitionConfig,
    stats: &mut WorkStats,
) -> FrequentSets {
    let n = db.len();
    if n == 0 {
        return FrequentSets::new();
    }
    let universe: Vec<ItemId> = if cfg.universe.is_empty() {
        (0..db.n_items() as u32).map(ItemId).collect()
    } else {
        cfg.universe.clone()
    };
    // With too many partitions the scaled local threshold degenerates to 1
    // and phase I enumerates every itemset occurring anywhere — an
    // exponential blowup. Using fewer partitions is always sound (the
    // candidate superset only shrinks), so clamp the count to keep the
    // local threshold at 2 or higher where the global threshold allows.
    let p_cap = if cfg.min_support >= 2 {
        (cfg.min_support as usize - 1).max(1)
    } else {
        1
    };
    let p = cfg.n_partitions.clamp(1, n.min(p_cap));

    // ---- Phase I: local mining (one pass over the database overall).
    let mut candidates: Vec<Itemset> = Vec::new();
    let base = n / p;
    let extra = n % p;
    let mut start = 0usize;
    for pi in 0..p {
        let len = base + usize::from(pi < extra);
        if len == 0 {
            continue;
        }
        let rows: Vec<Vec<ItemId>> =
            (start..start + len).map(|i| db.transaction(i).to_vec()).collect();
        start += len;
        let part = TransactionDb::new(db.n_items(), rows).expect("rows are valid");
        // Scaled local threshold: ceil(min_support * |part| / |D|), ≥ 1.
        let local_min =
            ((cfg.min_support as u128 * part.len() as u128).div_ceil(n as u128) as u64).max(1);
        candidates.extend(local_frequent(&part, &universe, local_min, cfg.backend, stats));
    }
    stats.record_scan();
    stats.scan.record_extent(1, db.len() as u64, db.total_items() as u64);
    candidates.sort();
    candidates.dedup();

    // ---- Phase II: one global counting pass over all candidate sizes.
    let counts = TrieCounter.count(db, &candidates);
    stats.record_scan();
    let deepest = candidates.iter().map(|c| c.len()).max().unwrap_or(1);
    stats.scan.record_extent(deepest, db.len() as u64, db.total_items() as u64);

    let mut by_level: Vec<Vec<(Itemset, u64)>> = Vec::new();
    let mut counted_per_level: Vec<u64> = Vec::new();
    for (c, n_sup) in candidates.into_iter().zip(counts) {
        let lvl = c.len();
        if by_level.len() < lvl {
            by_level.resize(lvl, Vec::new());
            counted_per_level.resize(lvl, 0);
        }
        counted_per_level[lvl - 1] += 1;
        if n_sup >= cfg.min_support {
            by_level[lvl - 1].push((c, n_sup));
        }
    }
    let mut out = FrequentSets::new();
    for (idx, mut level) in by_level.into_iter().enumerate() {
        level.sort_by(|a, b| a.0.cmp(&b.0));
        stats.record_level(idx + 1, counted_per_level[idx], level.len() as u64);
        out.push_level(level);
    }
    out
}

/// All locally frequent itemsets of one in-memory partition, via levelwise
/// generation against the injected counting backend. Local candidates
/// counted are recorded in `stats.support_counted` (no level rows — those
/// belong to the global Phase II pass); the partition index builds are
/// *not* database scans, they are part of the Phase I pass the caller
/// records once.
fn local_frequent(
    part: &TransactionDb,
    universe: &[ItemId],
    local_min: u64,
    backend: CountingBackend,
    stats: &mut WorkStats,
) -> Vec<Itemset> {
    // Owned indices for the counter to borrow; which one exists depends
    // on the backend. `Auto` resolves to bitmaps: the partition is
    // in-memory and dense, exactly the bitmap sweet spot.
    let tidset_index;
    let bitmap_index;
    let counter: Box<dyn SupportCounter + '_> = match backend {
        CountingBackend::Horizontal => Box::new(TrieCounter),
        CountingBackend::Tidset => {
            tidset_index = TidsetIndex::build(part);
            Box::new(VerticalCounter::new(&tidset_index))
        }
        CountingBackend::Bitmap | CountingBackend::Auto => {
            bitmap_index = BitmapIndex::build(part);
            Box::new(BitmapCounter::new(&bitmap_index))
        }
    };
    let mut out = Vec::new();

    let mut frontier: Vec<Itemset> = {
        let singles: Vec<Itemset> = universe.iter().map(|&i| Itemset::singleton(i)).collect();
        stats.record_counted(singles.len() as u64);
        let counts = counter.count(part, &singles);
        singles
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= local_min)
            .map(|(s, _)| s)
            .collect()
    };
    while !frontier.is_empty() {
        out.extend(frontier.iter().cloned());
        let next = generate_candidates(&frontier, |_| true);
        if next.is_empty() {
            break;
        }
        stats.record_counted(next.len() as u64);
        let counts = counter.count(part, &next);
        frontier = next
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= local_min)
            .map(|(s, _)| s)
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
                &[0, 2, 3],
                &[1, 2, 4, 5],
            ],
        )
    }

    fn run(db: &TransactionDb, min_support: u64, p: usize) -> (FrequentSets, WorkStats) {
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig { min_support, n_partitions: p, ..PartitionConfig::default() };
        (partition_mine(db, &cfg, &mut stats), stats)
    }

    fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
        fs.iter().map(|(s, n)| (s.clone(), n)).collect()
    }

    #[test]
    fn matches_apriori_across_partition_counts() {
        let d = db();
        for min_support in [2u64, 3, 4] {
            let mut stats = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            for p in [1usize, 2, 3, 5, 10, 50] {
                let (got, _) = run(&d, min_support, p);
                assert_eq!(
                    collect(&got),
                    collect(&expected),
                    "min_support={min_support}, p={p}"
                );
            }
        }
    }

    #[test]
    fn exactly_two_global_scans() {
        let d = db();
        let (_, stats) = run(&d, 2, 4);
        assert_eq!(stats.db_scans, 2, "Partition's defining property");
    }

    #[test]
    fn local_backends_agree_and_record_work() {
        let d = db();
        let mut reference: Option<Vec<(Itemset, u64)>> = None;
        for b in CountingBackend::all() {
            let mut stats = WorkStats::new();
            let cfg = PartitionConfig {
                min_support: 2,
                n_partitions: 4,
                backend: b,
                ..PartitionConfig::default()
            };
            let fs = partition_mine(&d, &cfg, &mut stats);
            assert_eq!(stats.db_scans, 2, "{b}: still exactly two global scans");
            assert_eq!(stats.scan.extents.len(), 2, "{b}: both global passes have extents");
            // Local mining's counting work is visible now, on top of the
            // global Phase II candidates.
            let phase2: u64 = stats.levels.iter().map(|l| l.candidates).sum();
            assert!(stats.support_counted > phase2, "{b}: local work recorded");
            let got = collect(&fs);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(r, &got, "{b}"),
            }
        }
    }

    #[test]
    fn empty_database() {
        let d = TransactionDb::new(4, Vec::new()).unwrap();
        let (fs, _) = run(&d, 1, 3);
        assert_eq!(fs.total(), 0);
    }

    #[test]
    fn universe_restriction() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig {
            universe: vec![ItemId(0), ItemId(2)],
            min_support: 2,
            n_partitions: 3,
            ..PartitionConfig::default()
        };
        let fs = partition_mine(&d, &cfg, &mut stats);
        for (s, _) in fs.iter() {
            assert!(s.iter().all(|i| i == ItemId(0) || i == ItemId(2)));
        }
        assert!(fs.contains(&[0u32, 2].into()));
    }

    #[test]
    fn randomized_agreement_with_apriori() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..15 {
            let n_items = rng.gen_range(4..10);
            let txs: Vec<Vec<ItemId>> = (0..rng.gen_range(5..40))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let min_support = rng.gen_range(1..5);
            let p = rng.gen_range(1..8);
            let mut stats = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            let (got, _) = run(&d, min_support, p);
            assert_eq!(collect(&got), collect(&expected), "p={p} s={min_support}");
        }
    }
}

#[cfg(test)]
mod clamp_tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    /// Degenerate configurations (local threshold would hit 1) are clamped
    /// rather than exploding, and stay result-equivalent.
    #[test]
    fn low_support_many_partitions_is_clamped() {
        let d = TransactionDb::from_u32(
            8,
            &[&[0, 1, 2, 3, 4, 5, 6, 7], &[0, 1, 2, 3], &[4, 5, 6, 7], &[0, 2, 4, 6]],
        );
        for min_support in [1u64, 2] {
            let mut stats = WorkStats::new();
            let cfg = PartitionConfig {
                min_support,
                n_partitions: 100,
                ..PartitionConfig::default()
            };
            let got = partition_mine(&d, &cfg, &mut stats);
            let mut s = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut s);
            let a: Vec<_> = got.iter().map(|(s, n)| (s.clone(), n)).collect();
            let b: Vec<_> = expected.iter().map(|(s, n)| (s.clone(), n)).collect();
            assert_eq!(a, b, "min_support={min_support}");
        }
    }
}

//! The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995),
//! cited by the paper's related work as one of the Apriori-era performance
//! techniques.
//!
//! Partition mines frequent sets in exactly **two** database scans:
//!
//! 1. Split the database into `p` in-memory partitions; mine each
//!    partition's *locally frequent* sets with a proportionally scaled
//!    threshold. Any globally frequent set is locally frequent in at least
//!    one partition (pigeonhole on support fractions), so the union of the
//!    local results is a complete candidate superset.
//! 2. One global counting pass over all candidates; keep those meeting the
//!    global threshold.
//!
//! Local mining here runs levelwise against a per-partition vertical
//! index — tidsets or bitmaps, following the injected
//! [`CountingBackend`] (the original paper also works vertically). The
//! two-scan property is what matters to the CFQ paper's dovetailing/I-O
//! discussion, so [`WorkStats::db_scans`] records exactly 2 for the
//! global database; per-partition counting work lands in
//! [`WorkStats::support_counted`].

use crate::apriori::{apriori, AprioriConfig};
use crate::backend::{CountingBackend, ResolvedBackend};
use crate::bitmap::{BitmapCounter, BitmapIndex};
use crate::candidates::generate_candidates;
use crate::counter::{SupportCounter, TrieCounter};
use crate::frequent::FrequentSets;
use crate::stats::WorkStats;
use crate::vertical::{TidsetIndex, VerticalCounter};
use cfq_types::{ItemId, Itemset, TransactionDb};

/// Configuration of a Partition run.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Item universe (empty = all items).
    pub universe: Vec<ItemId>,
    /// Absolute global minimum support.
    pub min_support: u64,
    /// Number of partitions (clamped to at least 1 and at most the number
    /// of transactions).
    pub n_partitions: usize,
    /// Counting backend for the per-partition local mining, resolved in
    /// exactly one place ([`resolve_local_backend`]): `Auto` resolves to
    /// bitmaps — partitions are in-memory and dense — and that is also
    /// the default. The resolved backend is recorded in
    /// [`WorkStats::backends_used`]. The global Phase II pass stays a
    /// single horizontal scan — that is the algorithm's defining
    /// property.
    pub backend: CountingBackend,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            universe: Vec::new(),
            min_support: 1,
            n_partitions: 1,
            backend: CountingBackend::Auto,
        }
    }
}

/// The one place `PartitionConfig::backend` is resolved for local
/// mining: `Auto` means bitmaps, everything else means itself.
pub fn resolve_local_backend(backend: CountingBackend) -> ResolvedBackend {
    match backend {
        CountingBackend::Horizontal => ResolvedBackend::Horizontal,
        CountingBackend::Tidset => ResolvedBackend::Tidset,
        CountingBackend::Bitmap | CountingBackend::Auto => ResolvedBackend::Bitmap,
    }
}

/// Phase-I local threshold for a partition of `part_rows` rows out of
/// `total_rows`: the **floor** of the proportional support,
/// `⌊min_support · part_rows / total_rows⌋`, clamped to at least 1.
///
/// Floor is sound by the SON pigeonhole argument: if a set is locally
/// infrequent in *every* partition, its global support is at most
/// `Σᵢ (tᵢ − 1) ≤ Σᵢ ⌊s·nᵢ/n⌋ − P ≤ s − P < s`, so every globally
/// frequent set is locally frequent somewhere. Rounding *up* from a
/// nominal (uniform) partition size instead — re-rounding `⌈s·n̂/n⌉`
/// computed for the nominal size `n̂` and applying it to an undersized
/// tail partition — breaks the bound and can drop a globally frequent
/// set whose support is concentrated in that tail (regression-tested
/// below and property-tested in `tests/shard_props.rs`).
pub fn scaled_local_threshold(min_support: u64, part_rows: usize, total_rows: usize) -> u64 {
    debug_assert!(part_rows <= total_rows && total_rows > 0);
    ((min_support as u128 * part_rows as u128 / total_rows as u128) as u64).max(1)
}

/// Runs the Partition algorithm; the result equals plain Apriori's.
pub fn partition_mine(
    db: &TransactionDb,
    cfg: &PartitionConfig,
    stats: &mut WorkStats,
) -> FrequentSets {
    let n = db.len();
    if n == 0 {
        // No rows, no scans: the accounting stays at zero.
        return FrequentSets::new();
    }
    let universe: Vec<ItemId> = if cfg.universe.is_empty() {
        (0..db.n_items() as u32).map(ItemId).collect()
    } else {
        cfg.universe.clone()
    };
    let resolved = resolve_local_backend(cfg.backend);
    // With too many partitions the scaled local threshold degenerates to 1
    // and phase I enumerates every itemset occurring anywhere — an
    // exponential blowup. Using fewer partitions is always sound (the
    // candidate superset only shrinks), so clamp the count to keep the
    // floored local threshold at 2 or higher where the global threshold
    // allows (⌊s·nᵢ/n⌋ ≥ 2 needs nᵢ ≥ 2n/s, i.e. at most s/2 partitions).
    let p_cap = ((cfg.min_support / 2) as usize).max(1);
    let p = cfg.n_partitions.clamp(1, n.min(p_cap));
    if p == 1 {
        // Degenerate single-partition run: phase I already counts every
        // candidate at the global threshold over the whole database, so a
        // phase-II recount would be a wasted scan charged as real work.
        // Delegate to plain Apriori with the resolved local backend — a
        // single-pass run with the (default) vertical backends.
        let acfg = AprioriConfig::new(cfg.min_support)
            .with_universe(universe)
            .with_backend(match resolved {
                ResolvedBackend::Horizontal => CountingBackend::Horizontal,
                ResolvedBackend::Tidset => CountingBackend::Tidset,
                ResolvedBackend::Bitmap => CountingBackend::Bitmap,
            });
        return apriori(db, &acfg, stats);
    }
    stats.record_backend(resolved.name());

    // ---- Phase I: local mining (one pass over the database overall).
    let mut candidates: Vec<Itemset> = Vec::new();
    let base = n / p;
    let extra = n % p;
    let mut start = 0usize;
    for pi in 0..p {
        let len = base + usize::from(pi < extra);
        if len == 0 {
            continue;
        }
        let rows: Vec<Vec<ItemId>> =
            (start..start + len).map(|i| db.transaction(i).to_vec()).collect();
        start += len;
        let part = TransactionDb::new(db.n_items(), rows).expect("rows are valid");
        let local_min = scaled_local_threshold(cfg.min_support, part.len(), n);
        candidates.extend(local_frequent(&part, &universe, local_min, resolved, stats));
    }
    stats.record_scan();
    stats.scan.record_extent(1, db.len() as u64, db.total_items() as u64);
    candidates.sort();
    candidates.dedup();

    // ---- Phase II: one global counting pass over all candidate sizes.
    let counts = TrieCounter.count(db, &candidates);
    stats.record_scan();
    let deepest = candidates.iter().map(|c| c.len()).max().unwrap_or(1);
    stats.scan.record_extent(deepest, db.len() as u64, db.total_items() as u64);

    let mut by_level: Vec<Vec<(Itemset, u64)>> = Vec::new();
    let mut counted_per_level: Vec<u64> = Vec::new();
    for (c, n_sup) in candidates.into_iter().zip(counts) {
        let lvl = c.len();
        if by_level.len() < lvl {
            by_level.resize(lvl, Vec::new());
            counted_per_level.resize(lvl, 0);
        }
        counted_per_level[lvl - 1] += 1;
        if n_sup >= cfg.min_support {
            by_level[lvl - 1].push((c, n_sup));
        }
    }
    let mut out = FrequentSets::new();
    for (idx, mut level) in by_level.into_iter().enumerate() {
        level.sort_by(|a, b| a.0.cmp(&b.0));
        stats.record_level(idx + 1, counted_per_level[idx], level.len() as u64);
        out.push_level(level);
    }
    out
}

/// All locally frequent itemsets of one in-memory partition, via levelwise
/// generation against the injected counting backend. Local candidates
/// counted are recorded in `stats.support_counted` (no level rows — those
/// belong to the global Phase II pass); the partition index builds are
/// *not* database scans, they are part of the Phase I pass the caller
/// records once.
fn local_frequent(
    part: &TransactionDb,
    universe: &[ItemId],
    local_min: u64,
    resolved: ResolvedBackend,
    stats: &mut WorkStats,
) -> Vec<Itemset> {
    // Owned indices for the counter to borrow; which one exists depends
    // on the backend the caller resolved through [`resolve_local_backend`].
    let tidset_index;
    let bitmap_index;
    let counter: Box<dyn SupportCounter + '_> = match resolved {
        ResolvedBackend::Horizontal => Box::new(TrieCounter),
        ResolvedBackend::Tidset => {
            tidset_index = TidsetIndex::build(part);
            Box::new(VerticalCounter::new(&tidset_index))
        }
        ResolvedBackend::Bitmap => {
            bitmap_index = BitmapIndex::build(part);
            Box::new(BitmapCounter::new(&bitmap_index))
        }
    };
    let mut out = Vec::new();

    let mut frontier: Vec<Itemset> = {
        let singles: Vec<Itemset> = universe.iter().map(|&i| Itemset::singleton(i)).collect();
        stats.record_counted(singles.len() as u64);
        let counts = counter.count(part, &singles);
        singles
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= local_min)
            .map(|(s, _)| s)
            .collect()
    };
    while !frontier.is_empty() {
        out.extend(frontier.iter().cloned());
        let next = generate_candidates(&frontier, |_| true);
        if next.is_empty() {
            break;
        }
        stats.record_counted(next.len() as u64);
        let counts = counter.count(part, &next);
        frontier = next
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= local_min)
            .map(|(s, _)| s)
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
                &[0, 2, 3],
                &[1, 2, 4, 5],
            ],
        )
    }

    fn run(db: &TransactionDb, min_support: u64, p: usize) -> (FrequentSets, WorkStats) {
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig { min_support, n_partitions: p, ..PartitionConfig::default() };
        (partition_mine(db, &cfg, &mut stats), stats)
    }

    fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
        fs.iter().map(|(s, n)| (s.clone(), n)).collect()
    }

    #[test]
    fn matches_apriori_across_partition_counts() {
        let d = db();
        for min_support in [2u64, 3, 4] {
            let mut stats = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            for p in [1usize, 2, 3, 5, 10, 50] {
                let (got, _) = run(&d, min_support, p);
                assert_eq!(
                    collect(&got),
                    collect(&expected),
                    "min_support={min_support}, p={p}"
                );
            }
        }
    }

    #[test]
    fn exactly_two_global_scans() {
        let d = db();
        // min_support 4 keeps the partition-count clamp at 2, so the run
        // genuinely uses two partitions (and thus two global scans).
        let (_, stats) = run(&d, 4, 2);
        assert_eq!(stats.db_scans, 2, "Partition's defining property");
    }

    #[test]
    fn local_backends_agree_and_record_work() {
        let d = db();
        let mut reference: Option<Vec<(Itemset, u64)>> = None;
        for b in CountingBackend::all() {
            let mut stats = WorkStats::new();
            let cfg = PartitionConfig {
                min_support: 4,
                n_partitions: 2,
                backend: b,
                ..PartitionConfig::default()
            };
            let fs = partition_mine(&d, &cfg, &mut stats);
            assert_eq!(stats.db_scans, 2, "{b}: still exactly two global scans");
            assert_eq!(stats.scan.extents.len(), 2, "{b}: both global passes have extents");
            // Local mining's counting work is visible now, on top of the
            // global Phase II candidates.
            let phase2: u64 = stats.levels.iter().map(|l| l.candidates).sum();
            assert!(stats.support_counted > phase2, "{b}: local work recorded");
            // The resolved backend — never `Auto` itself — lands in the
            // work accounting.
            let expected_name = resolve_local_backend(b).name();
            assert_eq!(
                stats.backends_used,
                vec![expected_name],
                "{b}: resolved backend recorded"
            );
            let got = collect(&fs);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(r, &got, "{b}"),
            }
        }
    }

    /// Satellite bugfix: when the partition count clamps to 1 the run
    /// degenerates to a single levelwise pass and must *not* charge the
    /// phantom second scan the old unconditional `db_scans = 2` recorded.
    #[test]
    fn clamp_to_one_partition_is_single_pass() {
        let d = db();
        // s=2 ⇒ p_cap = max(2/2, 1) = 1: any requested partition count
        // collapses to a single partition.
        let (got, stats) = run(&d, 2, 4);
        let mut s = WorkStats::new();
        let expected = apriori(
            &d,
            &AprioriConfig::new(2).with_backend(CountingBackend::Bitmap),
            &mut s,
        );
        assert_eq!(collect(&got), collect(&expected));
        assert_eq!(
            stats.db_scans, s.db_scans,
            "clamped run charges exactly what the single-pass run does"
        );
        assert_eq!(stats.db_scans, 1, "vertical backend: one scan, not two");
        assert_eq!(stats.backends_used, vec!["bitmap"], "Auto resolves to bitmaps");
    }

    /// Satellite bugfix: an empty database does no scanning at all —
    /// `db_scans` stays 0 and no extents are recorded.
    #[test]
    fn empty_database_charges_no_scans() {
        let d = TransactionDb::new(4, Vec::new()).unwrap();
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig { min_support: 1, n_partitions: 3, ..PartitionConfig::default() };
        let fs = partition_mine(&d, &cfg, &mut stats);
        assert_eq!(fs.total(), 0);
        assert_eq!(stats.db_scans, 0, "no rows, no scans");
        assert!(stats.scan.extents.is_empty(), "no extents either");
    }

    /// A universe of items absent from every row yields no frequent sets
    /// but still keeps the accounting consistent (scans are real passes
    /// over the data, not fabricated).
    #[test]
    fn effectively_empty_universe_accounting() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig {
            // Item 6 exists in the alphabet (n_items is widened) but in no row.
            universe: vec![ItemId(6)],
            min_support: 4,
            n_partitions: 2,
            ..PartitionConfig::default()
        };
        let widened =
            TransactionDb::new(7, d.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap();
        let fs = partition_mine(&widened, &cfg, &mut stats);
        assert_eq!(fs.total(), 0);
        // Phase I still scans each partition once (one logical global pass);
        // Phase II has no candidates to verify, so no second pass happens.
        assert!(stats.db_scans <= 2, "no phantom scans beyond the two passes");
    }

    #[test]
    fn empty_database() {
        let d = TransactionDb::new(4, Vec::new()).unwrap();
        let (fs, _) = run(&d, 1, 3);
        assert_eq!(fs.total(), 0);
    }

    #[test]
    fn universe_restriction() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = PartitionConfig {
            universe: vec![ItemId(0), ItemId(2)],
            min_support: 2,
            n_partitions: 3,
            ..PartitionConfig::default()
        };
        let fs = partition_mine(&d, &cfg, &mut stats);
        for (s, _) in fs.iter() {
            assert!(s.iter().all(|i| i == ItemId(0) || i == ItemId(2)));
        }
        assert!(fs.contains(&[0u32, 2].into()));
    }

    /// Satellite bugfix regression: the local threshold must be the
    /// **floor** of the proportional support per *actual* partition size.
    /// The broken variant — `⌈s·n̂/n⌉` computed once for the nominal
    /// uniform size `n̂ = ⌈n/p⌉` and applied to every partition — loses a
    /// globally frequent set whose support straddles an undersized tail
    /// partition. Counterexample: n=5 rows split {3,2}, s=4, a pair with
    /// local supports (2,2): nominal ceil gives t=⌈4·3/5⌉=3 everywhere
    /// and drops it; the floored per-size threshold (t₂=⌊8/5⌋=1) keeps it.
    #[test]
    fn floored_threshold_keeps_tail_concentrated_sets() {
        let d = TransactionDb::from_u32(3, &[&[0, 1], &[0, 1], &[2], &[0, 1], &[0, 1]]);
        let s = 4u64;
        let pair: Itemset = [0u32, 1].into();
        assert_eq!(d.support(&pair), 4, "globally frequent at s=4");

        // The correct path finds it.
        let (fs, _) = run(&d, s, 2);
        assert!(fs.contains(&pair), "floor threshold keeps the pair");

        // The buggy re-rounded-ceil variant loses it: with the nominal
        // threshold every partition's local mining drops the pair, so it
        // never reaches Phase II.
        let nominal = d.len().div_ceil(2);
        let bad_t = (s * nominal as u64).div_ceil(d.len() as u64);
        assert_eq!(bad_t, 3);
        let universe: Vec<ItemId> = (0..3).map(ItemId).collect();
        let mut lost = Vec::new();
        for (lo, hi) in [(0usize, 3usize), (3, 5)] {
            let rows: Vec<Vec<ItemId>> =
                (lo..hi).map(|i| d.transaction(i).to_vec()).collect();
            let part = TransactionDb::new(3, rows).unwrap();
            let mut sink = WorkStats::new();
            lost.extend(local_frequent(
                &part,
                &universe,
                bad_t,
                ResolvedBackend::Bitmap,
                &mut sink,
            ));
        }
        assert!(
            !lost.contains(&pair),
            "the ceil-from-nominal variant drops the globally frequent pair"
        );
    }

    /// The SON soundness bound for the floored thresholds: over any split,
    /// `Σᵢ (tᵢ − 1) < s`, so a set locally infrequent everywhere cannot be
    /// globally frequent. Exercised on deliberately uneven splits.
    #[test]
    fn floored_thresholds_satisfy_pigeonhole_bound() {
        for (s, sizes) in [
            (4u64, vec![3usize, 2]),
            (7, vec![1, 1, 5, 9]),
            (10, vec![10, 1, 1, 1, 1]),
            (3, vec![2, 2, 2]),
            (100, vec![33, 33, 34]),
            (5, vec![1, 2, 3, 4, 5, 6]),
        ] {
            let n: usize = sizes.iter().sum();
            let slack: u64 = sizes
                .iter()
                .map(|&ni| scaled_local_threshold(s, ni, n) - 1)
                .sum();
            assert!(slack < s, "s={s} sizes={sizes:?}: Σ(tᵢ−1)={slack} must be < s");
        }
    }

    #[test]
    fn randomized_agreement_with_apriori() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..15 {
            let n_items = rng.gen_range(4..10);
            let txs: Vec<Vec<ItemId>> = (0..rng.gen_range(5..40))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let min_support = rng.gen_range(1..5);
            let p = rng.gen_range(1..8);
            let mut stats = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            let (got, _) = run(&d, min_support, p);
            assert_eq!(collect(&got), collect(&expected), "p={p} s={min_support}");
        }
    }
}

#[cfg(test)]
mod clamp_tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    /// Degenerate configurations (local threshold would hit 1) are clamped
    /// rather than exploding, and stay result-equivalent.
    #[test]
    fn low_support_many_partitions_is_clamped() {
        let d = TransactionDb::from_u32(
            8,
            &[&[0, 1, 2, 3, 4, 5, 6, 7], &[0, 1, 2, 3], &[4, 5, 6, 7], &[0, 2, 4, 6]],
        );
        for min_support in [1u64, 2] {
            let mut stats = WorkStats::new();
            let cfg = PartitionConfig {
                min_support,
                n_partitions: 100,
                ..PartitionConfig::default()
            };
            let got = partition_mine(&d, &cfg, &mut stats);
            let mut s = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut s);
            let a: Vec<_> = got.iter().map(|(s, n)| (s.clone(), n)).collect();
            let b: Vec<_> = expected.iter().map(|(s, n)| (s.clone(), n)).collect();
            assert_eq!(a, b, "min_support={min_support}");
        }
    }
}

//! Work accounting for mining runs.
//!
//! The paper's ccc-optimality (Definition 6) measures a strategy by the
//! number of sets counted for support and the number of constraint-checking
//! invocations; §7's tables additionally report per-level candidate and
//! frequent counts. [`WorkStats`] records all of these, plus database scans
//! (the I/O-sharing argument for dovetailing in §5.2).

/// Per-level candidate/frequent counts — one row of the §7.1 `a/b` table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Level (itemset cardinality), 1-based.
    pub level: usize,
    /// Candidates counted for support at this level.
    pub candidates: u64,
    /// Candidates found frequent at this level.
    pub frequent: u64,
    /// Wall-clock microseconds spent generating and counting this level
    /// (0 when the recording path predates timing or nothing was timed).
    pub micros: u64,
}

/// The size of the database one scan actually touched — with per-level
/// trimming, later scans see far fewer rows/items than the full database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanExtent {
    /// Level (itemset cardinality) the scan counted, 1-based.
    pub level: usize,
    /// Transactions live in the scanned database.
    pub rows: u64,
    /// Item occurrences live in the scanned database (CSR arena length).
    pub items: u64,
}

/// Scan-volume and trim accounting for one mining run.
#[derive(Clone, Debug, Default)]
pub struct ScanStats {
    /// Transactions touched, summed over all scans.
    pub rows_scanned: u64,
    /// Item occurrences touched, summed over all scans — the substrate's
    /// "bytes scanned" (multiply by `size_of::<ItemId>()` for bytes).
    pub items_scanned: u64,
    /// Trim passes executed between levels.
    pub trim_passes: u64,
    /// Transactions dropped by trim passes.
    pub trim_rows_dropped: u64,
    /// Item occurrences dropped by trim passes.
    pub trim_items_dropped: u64,
    /// Per-scan extents, in scan order.
    pub extents: Vec<ScanExtent>,
}

impl ScanStats {
    /// Records one scan over a database of `rows` rows / `items` item
    /// occurrences, counting level `level`.
    pub fn record_extent(&mut self, level: usize, rows: u64, items: u64) {
        self.rows_scanned += rows;
        self.items_scanned += items;
        self.extents.push(ScanExtent { level, rows, items });
    }

    /// Records one trim pass and what it removed.
    pub fn record_trim(&mut self, rows_dropped: u64, items_dropped: u64) {
        self.trim_passes += 1;
        self.trim_rows_dropped += rows_dropped;
        self.trim_items_dropped += items_dropped;
    }

    /// Scan volume in bytes (item occurrences × the item id width).
    pub fn bytes_scanned(&self) -> u64 {
        self.items_scanned * std::mem::size_of::<cfq_types::ItemId>() as u64
    }

    /// Merges another scan accounting into this one.
    pub fn absorb(&mut self, other: &ScanStats) {
        self.rows_scanned += other.rows_scanned;
        self.items_scanned += other.items_scanned;
        self.trim_passes += other.trim_passes;
        self.trim_rows_dropped += other.trim_rows_dropped;
        self.trim_items_dropped += other.trim_items_dropped;
        self.extents.extend(other.extents.iter().cloned());
    }
}

/// Aggregate work counters for one mining run (or one lattice of a
/// dovetailed run).
#[derive(Clone, Debug, Default)]
pub struct WorkStats {
    /// Full passes over the transaction database.
    pub db_scans: u64,
    /// Total sets counted for support (ccc condition 1's currency).
    pub support_counted: u64,
    /// Constraint-checking invocations (ccc condition 2's currency).
    pub constraint_checks: u64,
    /// Candidates discarded before counting by pushed constraints.
    pub pruned_candidates: u64,
    /// Per-level breakdown.
    pub levels: Vec<LevelStats>,
    /// Scan volume and trim accounting (how much data the scans touched).
    pub scan: ScanStats,
    /// Lattice/plan cache hits served by a long-lived engine (0 for
    /// one-shot runs).
    pub cache_hits: u64,
    /// Lattice/plan cache misses recorded by a long-lived engine.
    pub cache_misses: u64,
    /// Database scans a cache hit avoided: the scan cost the cached
    /// lattice's cold mining run paid, credited on each reuse.
    pub scans_saved: u64,
    /// Counting backends this run actually resolved to, in first-use
    /// order, deduplicated — `Auto` never appears here, only what it
    /// resolved to. Lets callers assert which backend did the work.
    pub backends_used: Vec<&'static str>,
}

impl WorkStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        WorkStats::default()
    }

    /// Records a counted level.
    pub fn record_level(&mut self, level: usize, candidates: u64, frequent: u64) {
        self.record_level_timed(level, candidates, frequent, 0);
    }

    /// Records a counted level together with the wall-clock microseconds
    /// it took — the per-level timings the slow-query log reports.
    pub fn record_level_timed(&mut self, level: usize, candidates: u64, frequent: u64, micros: u64) {
        self.support_counted += candidates;
        self.levels.push(LevelStats { level, candidates, frequent, micros });
    }

    /// Records one database scan.
    pub fn record_scan(&mut self) {
        self.db_scans += 1;
    }

    /// Records `n` sets counted for support outside the levelwise path
    /// (e.g. Partition's per-partition vertical mining), without adding a
    /// level row.
    pub fn record_counted(&mut self, n: u64) {
        self.support_counted += n;
    }

    /// Records `n` constraint-check invocations.
    pub fn record_checks(&mut self, n: u64) {
        self.constraint_checks += n;
    }

    /// Records `n` candidates pruned before counting.
    pub fn record_pruned(&mut self, n: u64) {
        self.pruned_candidates += n;
    }

    /// Records a cache hit that avoided `scans_saved` database scans.
    pub fn record_cache_hit(&mut self, scans_saved: u64) {
        self.cache_hits += 1;
        self.scans_saved += scans_saved;
    }

    /// Records a cache miss (the work that followed is accounted normally).
    pub fn record_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Records that counting resolved to `backend` (a concrete backend
    /// name, never `"auto"`). Idempotent per name.
    pub fn record_backend(&mut self, backend: &'static str) {
        if !self.backends_used.contains(&backend) {
            self.backends_used.push(backend);
        }
    }

    /// Merges another stats object into this one (used when combining the
    /// S- and T-lattice halves of a run). Levels are concatenated.
    pub fn absorb(&mut self, other: &WorkStats) {
        self.db_scans += other.db_scans;
        self.support_counted += other.support_counted;
        self.constraint_checks += other.constraint_checks;
        self.pruned_candidates += other.pruned_candidates;
        self.levels.extend(other.levels.iter().cloned());
        self.scan.absorb(&other.scan);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.scans_saved += other.scans_saved;
        for b in &other.backends_used {
            self.record_backend(b);
        }
    }

    /// Total frequent sets found across levels.
    pub fn total_frequent(&self) -> u64 {
        self.levels.iter().map(|l| l.frequent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = WorkStats::new();
        s.record_scan();
        s.record_level(1, 100, 40);
        s.record_scan();
        s.record_level(2, 300, 120);
        s.record_checks(100);
        s.record_pruned(7);
        assert_eq!(s.db_scans, 2);
        assert_eq!(s.support_counted, 400);
        assert_eq!(s.constraint_checks, 100);
        assert_eq!(s.pruned_candidates, 7);
        assert_eq!(s.total_frequent(), 160);
        assert_eq!(s.levels.len(), 2);
        assert_eq!(s.levels[1], LevelStats { level: 2, candidates: 300, frequent: 120, micros: 0 });
    }

    #[test]
    fn timed_levels_carry_micros() {
        let mut s = WorkStats::new();
        s.record_level_timed(1, 50, 20, 1234);
        assert_eq!(s.levels[0].micros, 1234);
        assert_eq!(s.support_counted, 50);
        // Untimed recording defaults to zero micros.
        s.record_level(2, 10, 5);
        assert_eq!(s.levels[1].micros, 0);
    }

    #[test]
    fn scan_accounting() {
        let mut s = ScanStats::default();
        s.record_extent(1, 100, 1000);
        s.record_trim(40, 600);
        s.record_extent(2, 60, 400);
        assert_eq!(s.rows_scanned, 160);
        assert_eq!(s.items_scanned, 1400);
        assert_eq!(s.trim_passes, 1);
        assert_eq!(s.trim_rows_dropped, 40);
        assert_eq!(s.trim_items_dropped, 600);
        assert_eq!(s.bytes_scanned(), 1400 * 4);
        assert_eq!(s.extents[1], ScanExtent { level: 2, rows: 60, items: 400 });

        let mut t = ScanStats::default();
        t.record_extent(1, 10, 20);
        s.absorb(&t);
        assert_eq!(s.items_scanned, 1420);
        assert_eq!(s.extents.len(), 3);
    }

    #[test]
    fn absorb_merges() {
        let mut a = WorkStats::new();
        a.record_scan();
        a.record_level(1, 10, 5);
        let mut b = WorkStats::new();
        b.record_level(1, 20, 9);
        b.record_checks(3);
        b.record_cache_hit(4);
        b.record_cache_miss();
        a.absorb(&b);
        assert_eq!(a.support_counted, 30);
        assert_eq!(a.constraint_checks, 3);
        assert_eq!(a.levels.len(), 2);
        assert_eq!(a.total_frequent(), 14);
        assert_eq!(a.cache_hits, 1);
        assert_eq!(a.cache_misses, 1);
        assert_eq!(a.scans_saved, 4);
    }

    #[test]
    fn backends_used_dedups_and_absorbs() {
        let mut a = WorkStats::new();
        a.record_backend("bitmap");
        a.record_backend("bitmap");
        assert_eq!(a.backends_used, vec!["bitmap"]);
        let mut b = WorkStats::new();
        b.record_backend("horizontal");
        b.record_backend("bitmap");
        a.absorb(&b);
        assert_eq!(a.backends_used, vec!["bitmap", "horizontal"]);
    }
}

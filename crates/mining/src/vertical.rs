//! Vertical (tidset) support counting, Eclat-style.
//!
//! The horizontal trie counter scans transactions per level; the vertical
//! representation inverts the database once into per-item sorted TID lists
//! and computes a candidate's support by intersecting them. For batches of
//! related candidates the prefix cache makes the incremental cost of a
//! candidate one intersection of its (k-1)-prefix tidset with one item
//! tidset — the classic Eclat recurrence.
//!
//! Counting agreement with the horizontal counters is property-tested.

use crate::counter::SupportCounter;
use cfq_types::{ItemId, Itemset, TransactionDb};

/// Inverted index: per item, the sorted list of transaction ids containing
/// it. Build once, reuse across levels.
pub struct TidsetIndex {
    tids: Vec<Vec<u32>>,
    n_transactions: usize,
}

impl TidsetIndex {
    /// Inverts the database (one pass).
    pub fn build(db: &TransactionDb) -> TidsetIndex {
        let mut tids = vec![Vec::new(); db.n_items()];
        for (tid, t) in db.iter().enumerate() {
            for &i in t {
                tids[i.index()].push(tid as u32);
            }
        }
        TidsetIndex { tids, n_transactions: db.len() }
    }

    /// The tidset of a single item.
    pub fn item_tids(&self, item: ItemId) -> &[u32] {
        &self.tids[item.index()]
    }

    /// Number of transactions in the indexed database.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Computes the tidset of an itemset by left-deep intersection,
    /// smallest-first for the accumulator seed.
    pub fn tidset(&self, set: &Itemset) -> Vec<u32> {
        let mut items: Vec<ItemId> = set.iter().collect();
        if items.is_empty() {
            return (0..self.n_transactions as u32).collect();
        }
        // Start from the rarest item to keep the accumulator small.
        items.sort_by_key(|i| self.tids[i.index()].len());
        let mut acc = self.tids[items[0].index()].clone();
        for &i in &items[1..] {
            intersect_into(&mut acc, &self.tids[i.index()]);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Support of an itemset.
    pub fn support(&self, set: &Itemset) -> u64 {
        self.tidset(set).len() as u64
    }
}

/// In-place sorted intersection: `acc ← acc ∩ other`.
fn intersect_into(acc: &mut Vec<u32>, other: &[u32]) {
    let mut w = 0usize;
    let mut j = 0usize;
    for r in 0..acc.len() {
        let v = acc[r];
        while j < other.len() && other[j] < v {
            j += 1;
        }
        if j < other.len() && other[j] == v {
            acc[w] = v;
            w += 1;
            j += 1;
        }
    }
    acc.truncate(w);
}

/// A [`SupportCounter`] backed by a [`TidsetIndex`].
///
/// Within a sorted batch, consecutive candidates usually share a
/// (k-1)-prefix; the counter caches the prefix tidset and only intersects
/// the final item per candidate.
pub struct VerticalCounter<'a> {
    index: &'a TidsetIndex,
}

impl<'a> VerticalCounter<'a> {
    /// Wraps an index.
    pub fn new(index: &'a TidsetIndex) -> Self {
        VerticalCounter { index }
    }
}

impl SupportCounter for VerticalCounter<'_> {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        debug_assert_eq!(db.len(), self.index.n_transactions, "index/db mismatch");
        let mut counts = Vec::with_capacity(candidates.len());
        let mut cached_prefix: Option<(Vec<ItemId>, Vec<u32>)> = None;
        for c in candidates {
            let items = c.as_slice();
            if items.is_empty() {
                counts.push(db.len() as u64);
                continue;
            }
            let (prefix, last) = items.split_at(items.len() - 1);
            let hit = cached_prefix
                .as_ref()
                .map(|(p, _)| p.as_slice() == prefix)
                .unwrap_or(false);
            if !hit {
                let prefix_set: Itemset = prefix.iter().copied().collect();
                cached_prefix = Some((prefix.to_vec(), self.index.tidset(&prefix_set)));
            }
            let (_, prefix_tids) = cached_prefix.as_ref().unwrap();
            let mut acc = prefix_tids.clone();
            intersect_into(&mut acc, self.index.item_tids(last[0]));
            counts.push(acc.len() as u64);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::NaiveCounter;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[1, 2, 3],
                &[0, 2, 4],
                &[1, 2],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4, 5],
            ],
        )
    }

    #[test]
    fn index_build_and_tidsets() {
        let d = db();
        let idx = TidsetIndex::build(&d);
        assert_eq!(idx.item_tids(ItemId(2)), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(idx.item_tids(ItemId(5)), &[4, 5]);
        assert_eq!(idx.tidset(&[1u32, 3].into()), vec![0, 1, 5]);
        assert_eq!(idx.support(&[0u32, 5].into()), 1);
        assert_eq!(idx.tidset(&Itemset::empty()).len(), 6);
    }

    #[test]
    fn matches_naive_counter() {
        let d = db();
        let idx = TidsetIndex::build(&d);
        let cands: Vec<Itemset> = vec![
            [0u32].into(),
            [0u32, 1].into(),
            [0u32, 2].into(),
            [1u32, 2, 3].into(),
            [3u32, 4, 5].into(),
        ];
        let v = VerticalCounter::new(&idx).count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
    }

    #[test]
    fn prefix_cache_handles_batches() {
        let d = db();
        let idx = TidsetIndex::build(&d);
        // Sorted batch with shared prefixes (the usual levelwise shape).
        let cands: Vec<Itemset> = vec![
            [0u32, 1, 2].into(),
            [0u32, 1, 3].into(),
            [0u32, 1, 4].into(),
            [0u32, 2, 3].into(),
            [1u32, 2, 3].into(),
        ];
        let v = VerticalCounter::new(&idx).count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
    }

    #[test]
    fn randomized_agreement_with_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n_items = rng.gen_range(3..10);
            let txs: Vec<Vec<ItemId>> = (0..rng.gen_range(1..30))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let idx = TidsetIndex::build(&d);
            let k = rng.gen_range(1..4usize);
            let mut cands: Vec<Itemset> = (0..rng.gen_range(1..20))
                .map(|_| (0..k).map(|_| rng.gen_range(0..n_items as u32)).collect())
                .collect();
            cands.sort();
            cands.dedup();
            cands.retain(|c: &Itemset| !c.is_empty());
            let v = VerticalCounter::new(&idx).count(&d, &cands);
            let n = NaiveCounter.count(&d, &cands);
            assert_eq!(v, n);
        }
    }
}

//! Apriori candidate generation with a pluggable validity oracle.

use cfq_types::{FxHashSet, Itemset};

/// Generates level-(k+1) candidates from the sorted frequent k-sets
/// `frequent`, using the classic prefix join followed by the subset prune.
///
/// `subset_matters` is the *validity oracle*: the prune only requires
/// frequency of (k)-subsets for which `subset_matters` returns `true`.
/// Plain Apriori passes `|_| true`. CAP's succinct-only strategy passes an
/// oracle that returns `false` for subsets that are invalid w.r.t. the
/// pushed constraint — such subsets are never counted, so demanding their
/// frequency would wrongly kill valid candidates (see §4 of the paper and
/// the CAP paper's Strategy II).
///
/// The output is sorted and duplicate-free (the join of sorted input
/// produces sorted output).
pub fn generate_candidates<F>(frequent: &[Itemset], subset_matters: F) -> Vec<Itemset>
where
    F: Fn(&Itemset) -> bool,
{
    if frequent.is_empty() {
        return Vec::new();
    }
    debug_assert!(frequent.windows(2).all(|w| w[0] < w[1]), "frequent sets must be sorted");
    let lookup: FxHashSet<&Itemset> = frequent.iter().collect();
    let k = frequent[0].len();
    debug_assert!(frequent.iter().all(|s| s.len() == k));

    let mut out = Vec::new();
    let mut group_start = 0usize;
    while group_start < frequent.len() {
        // Group = maximal run sharing the (k-1)-prefix.
        let prefix = &frequent[group_start].as_slice()[..k - 1];
        let mut group_end = group_start + 1;
        while group_end < frequent.len()
            && &frequent[group_end].as_slice()[..k - 1] == prefix
        {
            group_end += 1;
        }
        for a in group_start..group_end {
            for b in a + 1..group_end {
                let cand = frequent[a]
                    .apriori_join(&frequent[b])
                    .expect("same prefix, ordered last items always join");
                if prune_ok(&cand, &lookup, &subset_matters) {
                    out.push(cand);
                }
            }
        }
        group_start = group_end;
    }
    out
}

/// The subset prune: every k-subset of `cand` that matters must be frequent.
fn prune_ok<F>(cand: &Itemset, lookup: &FxHashSet<&Itemset>, subset_matters: &F) -> bool
where
    F: Fn(&Itemset) -> bool,
{
    let mut ok = true;
    cand.for_each_len_minus_one(|sub| {
        if ok && subset_matters(sub) && !lookup.contains(sub) {
            ok = false;
        }
    });
    ok
}

/// Level-1 → level-2 candidate generation from frequent singletons: all
/// pairs. (The generic join handles this too; kept as an explicit helper
/// because CAP's succinct strategy builds level 2 from `R × (R ∪ O)`.)
pub fn pairs_from_singletons(singletons: &[Itemset]) -> Vec<Itemset> {
    generate_candidates(singletons, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(v: &[&[u32]]) -> Vec<Itemset> {
        v.iter().map(|s| s.iter().copied().collect()).collect()
    }

    #[test]
    fn classic_join_and_prune() {
        // Frequent 2-sets: {1,2},{1,3},{1,4},{2,3}. Joins: {1,2,3},{1,2,4},
        // {1,3,4}. Prune: {1,2,3} keeps ({2,3} frequent), {1,2,4} dies
        // ({2,4} missing), {1,3,4} dies ({3,4} missing).
        let freq = sets(&[&[1, 2], &[1, 3], &[1, 4], &[2, 3]]);
        let cands = generate_candidates(&freq, |_| true);
        assert_eq!(cands, sets(&[&[1, 2, 3]]));
    }

    #[test]
    fn oracle_relaxes_prune() {
        // Same as above, but subsets not containing item 1 "don't matter"
        // (e.g. item 1 is the required item of a succinct constraint, and
        // 1-free sets were never counted).
        let freq = sets(&[&[1, 2], &[1, 3], &[1, 4], &[2, 3]]);
        let cands = generate_candidates(&freq, |s| s.contains(cfq_types::ItemId(1)));
        assert_eq!(cands, sets(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4]]));
    }

    #[test]
    fn singleton_join() {
        let freq = sets(&[&[1], &[3], &[5]]);
        let cands = pairs_from_singletons(&freq);
        assert_eq!(cands, sets(&[&[1, 3], &[1, 5], &[3, 5]]));
    }

    #[test]
    fn empty_input() {
        assert!(generate_candidates(&[], |_| true).is_empty());
    }

    #[test]
    fn no_joinable_pairs() {
        let freq = sets(&[&[1, 2], &[3, 4]]);
        assert!(generate_candidates(&freq, |_| true).is_empty());
    }

    #[test]
    fn output_sorted_unique() {
        let freq = sets(&[&[1, 2], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[3, 4]]);
        let cands = generate_candidates(&freq, |_| true);
        assert_eq!(cands, sets(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[2, 3, 4]]));
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
    }
}

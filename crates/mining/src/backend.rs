//! The counting-backend axis: horizontal scans vs vertical indices.
//!
//! Every levelwise executor (Apriori, the CAP/dovetail executors in
//! `cfq-core`, Partition's local mining) counts candidate supports
//! against the database. *How* is a first-class choice, selected the same
//! way `--trim` already is:
//!
//! * [`CountingBackend::Horizontal`] — per-level row scans through the
//!   trie counter (optionally trimmed and sharded; the default).
//! * [`CountingBackend::Tidset`] — invert once into sorted-u32 tid lists
//!   ([`crate::vertical`]) and count by merge intersection.
//! * [`CountingBackend::Bitmap`] — invert once into u64 tid-bitmaps
//!   ([`crate::bitmap`]): AND + popcount, diffsets at deep levels.
//! * [`CountingBackend::Auto`] — per-level crossover: bitmaps where the
//!   word volume beats the (trimmed) horizontal scan volume, horizontal
//!   scans where trim has made rows cheaper than words.
//!
//! [`CountingRun`] owns the per-run state: lazily built indices (whose
//! one inversion pass is accounted as a database scan) and the per-level
//! resolution. Backend selections, AND volume and per-backend level
//! micros are published to the process-global `cfq-obs` registry as
//! `cfq_mining_backend_*` so `cfq serve --metrics-addr` scrapes expose
//! them.

use crate::bitmap::{BitmapCounter, BitmapIndex};
use crate::counter::SupportCounter;
use crate::stats::{ScanStats, WorkStats};
use crate::vertical::{TidsetIndex, VerticalCounter};
use cfq_obs as obs;
use cfq_types::{Itemset, TransactionDb};

/// Which support-counting substrate a mining run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CountingBackend {
    /// Horizontal row scans (trie counter), one scan per level.
    #[default]
    Horizontal,
    /// Vertical sorted-u32 tidset intersection (Eclat lists).
    Tidset,
    /// Vertical u64 tid-bitmaps: AND + popcount, diffsets deep down.
    Bitmap,
    /// Per-level crossover between `Bitmap` and `Horizontal`.
    Auto,
}

impl CountingBackend {
    /// Canonical lowercase name (CLI/JSON value).
    pub fn name(&self) -> &'static str {
        match self {
            CountingBackend::Horizontal => "horizontal",
            CountingBackend::Tidset => "tidset",
            CountingBackend::Bitmap => "bitmap",
            CountingBackend::Auto => "auto",
        }
    }

    /// Parses a CLI/JSON backend name.
    pub fn parse(s: &str) -> Option<CountingBackend> {
        match s {
            "horizontal" => Some(CountingBackend::Horizontal),
            "tidset" => Some(CountingBackend::Tidset),
            "bitmap" => Some(CountingBackend::Bitmap),
            "auto" => Some(CountingBackend::Auto),
            _ => None,
        }
    }

    /// All selectable backends, in CLI help order.
    pub fn all() -> [CountingBackend; 4] {
        [
            CountingBackend::Horizontal,
            CountingBackend::Tidset,
            CountingBackend::Bitmap,
            CountingBackend::Auto,
        ]
    }
}

impl std::fmt::Display for CountingBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a level actually counts with after `Auto` resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Horizontal row scan — the caller keeps its trim + trie path.
    Horizontal,
    /// Sorted-u32 tidset intersection against the lazily built index.
    Tidset,
    /// Bitmap AND + popcount against the lazily built index.
    Bitmap,
}

impl ResolvedBackend {
    /// Canonical lowercase name (metric label value).
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedBackend::Horizontal => "horizontal",
            ResolvedBackend::Tidset => "tidset",
            ResolvedBackend::Bitmap => "bitmap",
        }
    }

    /// Does this level count through a vertical index?
    pub fn is_vertical(&self) -> bool {
        !matches!(self, ResolvedBackend::Horizontal)
    }
}

/// Per-run backend state: the configured axis plus lazily built vertical
/// indices over the *untrimmed* database.
pub struct CountingRun<'a> {
    db: &'a TransactionDb,
    backend: CountingBackend,
    bitmap: Option<BitmapIndex>,
    tidset: Option<TidsetIndex>,
}

impl<'a> CountingRun<'a> {
    /// Creates the run state for one mining run over `db`.
    pub fn new(db: &'a TransactionDb, backend: CountingBackend) -> Self {
        CountingRun { db, backend, bitmap: None, tidset: None }
    }

    /// The configured (unresolved) backend axis.
    pub fn backend(&self) -> CountingBackend {
        self.backend
    }

    /// Decides how to count level `level`'s `n_candidates` candidates.
    ///
    /// `Auto`'s crossover compares the level's vertical word volume
    /// (`n_candidates × words-per-item`) against the horizontal scan
    /// volume the trimmed database would cost — the last [`ScanStats`]
    /// extent, i.e. the per-level density the stats layer already tracks.
    /// Dense early levels win for bitmaps (one word covers 64 rows);
    /// once trim has shrunk the live rows below the word volume, the
    /// horizontal scan is the cheaper read.
    pub fn resolve(&self, level: usize, n_candidates: usize, scan: &ScanStats) -> ResolvedBackend {
        match self.backend {
            CountingBackend::Horizontal => ResolvedBackend::Horizontal,
            CountingBackend::Tidset => ResolvedBackend::Tidset,
            CountingBackend::Bitmap => ResolvedBackend::Bitmap,
            CountingBackend::Auto => {
                // Levels 1–2 are always dense enough for words: level 1 is
                // free off the index, level 2 is the candidate flood where
                // 64-rows-per-word wins by construction.
                if level <= 2 {
                    return ResolvedBackend::Bitmap;
                }
                let words = self.db.len().div_ceil(64) as u64;
                let word_volume = (n_candidates as u64).saturating_mul(words);
                let horizontal_volume = scan
                    .extents
                    .last()
                    .map(|e| e.items)
                    .unwrap_or(self.db.total_items() as u64);
                if word_volume <= horizontal_volume {
                    ResolvedBackend::Bitmap
                } else {
                    ResolvedBackend::Horizontal
                }
            }
        }
    }

    /// Counts `candidates` through a vertical index, recording work in
    /// `stats`: the first index use charges one database scan (the
    /// inversion pass reads every row once); later levels are scan-free.
    ///
    /// The caller records the level itself (`record_level_timed`), same
    /// as on the horizontal path.
    pub fn count_vertical(
        &mut self,
        resolved: ResolvedBackend,
        candidates: &[Itemset],
        level: usize,
        stats: &mut WorkStats,
    ) -> Vec<u64> {
        match resolved {
            ResolvedBackend::Horizontal => {
                unreachable!("count_vertical called with a horizontal resolution")
            }
            ResolvedBackend::Tidset => {
                if self.tidset.is_none() {
                    self.tidset = Some(TidsetIndex::build(self.db));
                    stats.record_scan();
                    stats.scan.record_extent(
                        level,
                        self.db.len() as u64,
                        self.db.total_items() as u64,
                    );
                }
                VerticalCounter::new(self.tidset.as_ref().unwrap()).count(self.db, candidates)
            }
            ResolvedBackend::Bitmap => {
                if self.bitmap.is_none() {
                    self.bitmap = Some(BitmapIndex::build(self.db));
                    stats.record_scan();
                    stats.scan.record_extent(
                        level,
                        self.db.len() as u64,
                        self.db.total_items() as u64,
                    );
                }
                let counter = BitmapCounter::new(self.bitmap.as_ref().unwrap());
                let counts = counter.count(self.db, candidates);
                metric_words_anded(counter.words_anded());
                counts
            }
        }
    }
}

/// Bumps `cfq_mining_backend_selected_total{backend=...}` — one increment
/// per counted level.
pub fn metric_selected(backend: &'static str) {
    obs::metrics::global()
        .counter_with(
            "cfq_mining_backend_selected_total",
            "Counted levels per resolved counting backend.",
            &[("backend", backend)],
        )
        .inc();
}

/// Adds to `cfq_mining_backend_level_micros_total{backend=...}` — wall
/// micros spent generating + counting levels, per resolved backend.
pub fn metric_level_micros(backend: &'static str, micros: u64) {
    obs::metrics::global()
        .counter_with(
            "cfq_mining_backend_level_micros_total",
            "Wall-clock microseconds spent on counted levels, per resolved counting backend.",
            &[("backend", backend)],
        )
        .add(micros);
}

/// Adds to `cfq_mining_backend_words_anded_total` — u64 word operations
/// performed by bitmap AND/popcount loops.
pub fn metric_words_anded(n: u64) {
    obs::metrics::global()
        .counter_with(
            "cfq_mining_backend_words_anded_total",
            "u64 word operations performed by bitmap AND/popcount loops.",
            &[],
        )
        .add(n);
}

/// Bumps `cfq_mining_shard_levels_total{shards=...}` — one increment per
/// level counted through the sharded substrate, labeled by shard count.
pub fn metric_shard_levels(n_shards: usize) {
    let shards = n_shards.to_string();
    obs::metrics::global()
        .counter_with(
            "cfq_mining_shard_levels_total",
            "Levels counted through the sharded substrate, per shard count.",
            &[("shards", shards.as_str())],
        )
        .inc();
}

/// Adds to `cfq_mining_shard_merges_total` — per-shard partial count
/// vectors merged at level barriers (one per shard per counted level).
pub fn metric_shard_merges(n: u64) {
    obs::metrics::global()
        .counter_with(
            "cfq_mining_shard_merges_total",
            "Per-shard partial count vectors merged at level barriers.",
            &[],
        )
        .add(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in CountingBackend::all() {
            assert_eq!(CountingBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(CountingBackend::parse("eclat"), None);
        assert_eq!(CountingBackend::default(), CountingBackend::Horizontal);
    }

    #[test]
    fn fixed_backends_resolve_to_themselves() {
        let db = TransactionDb::from_u32(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        let scan = ScanStats::default();
        for (b, want) in [
            (CountingBackend::Horizontal, ResolvedBackend::Horizontal),
            (CountingBackend::Tidset, ResolvedBackend::Tidset),
            (CountingBackend::Bitmap, ResolvedBackend::Bitmap),
        ] {
            let run = CountingRun::new(&db, b);
            for level in 1..5 {
                assert_eq!(run.resolve(level, 100, &scan), want);
            }
        }
    }

    #[test]
    fn auto_crosses_over_by_level_density() {
        // 640 rows → 10 words per item.
        let rows: Vec<Vec<cfq_types::ItemId>> = (0..640)
            .map(|i| vec![cfq_types::ItemId(i as u32 % 4), cfq_types::ItemId(4 + i as u32 % 3)])
            .collect();
        let db = TransactionDb::new(7, rows).unwrap();
        let run = CountingRun::new(&db, CountingBackend::Auto);
        let mut scan = ScanStats::default();
        // Early levels: always bitmap.
        assert_eq!(run.resolve(1, 7, &scan), ResolvedBackend::Bitmap);
        assert_eq!(run.resolve(2, 21, &scan), ResolvedBackend::Bitmap);
        // Deep level, fat horizontal extent: word volume (5×10=50) is far
        // below 1280 scanned items → stay vertical.
        scan.record_extent(2, 640, 1280);
        assert_eq!(run.resolve(3, 5, &scan), ResolvedBackend::Bitmap);
        // Trim collapsed the live rows to 30 items: 50 words > 30 items →
        // horizontal wins the crossover.
        scan.record_extent(3, 15, 30);
        assert_eq!(run.resolve(4, 5, &scan), ResolvedBackend::Horizontal);
    }

    #[test]
    fn vertical_counting_charges_one_scan_total() {
        let db = TransactionDb::from_u32(
            4,
            &[&[0, 1, 2], &[0, 1, 3], &[1, 2, 3], &[0, 2], &[0, 1, 2, 3]],
        );
        for backend in [CountingBackend::Tidset, CountingBackend::Bitmap] {
            let mut run = CountingRun::new(&db, backend);
            let mut stats = WorkStats::new();
            let resolved = run.resolve(1, 4, &stats.scan);
            let singles: Vec<Itemset> = (0..4u32).map(|i| [i].into()).collect();
            let c1 = run.count_vertical(resolved, &singles, 1, &mut stats);
            assert_eq!(c1, vec![4, 4, 4, 3]);
            assert_eq!(stats.db_scans, 1, "{backend}: index build is the only scan");
            let pairs: Vec<Itemset> = vec![[0u32, 1].into(), [1u32, 2].into()];
            let c2 = run.count_vertical(run.resolve(2, 2, &stats.scan), &pairs, 2, &mut stats);
            assert_eq!(c2, vec![3, 3]);
            assert_eq!(stats.db_scans, 1, "{backend}: later levels are scan-free");
            assert_eq!(stats.scan.extents.len(), 1);
        }
    }
}

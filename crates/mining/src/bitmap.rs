//! Vertical *bitmap* support counting: u64 tid-bitmaps and diffsets.
//!
//! Where [`crate::vertical`] stores each item's transactions as a sorted
//! u32 list, this module packs them into bit vectors — one bit per
//! transaction, 64 per word, all items laid out in one contiguous arena so
//! a level's AND loops stream linearly through memory. Support is then
//! word-wide: `AND` + [`u64::count_ones`].
//!
//! Two refinements keep deep levels cheap on correlated data:
//!
//! * **Dense/sparse hybrid.** Items appearing in fewer than one
//!   transaction per word (density < 1/64) keep their sorted tid list
//!   instead of a mostly-zero bitmap; probing a handful of bits beats
//!   ANDing kilobytes of zeros.
//! * **Diffsets.** For a candidate `P ∪ {i}` at level ≥ 3 whose cached
//!   prefix `P` is itself sparse, support is computed by the diffset
//!   recurrence `support(P∪{i}) = support(P) − |d(P∪{i})|` where
//!   `d(P∪{i}) = t(P) \ t(i)`: the prefix's few surviving tids are probed
//!   against item `i`'s bitmap instead of re-ANDing full rows. The dense
//!   per-word loop uses the same identity (`prefix & !item`).
//!
//! The batch counter reuses the Eclat prefix-cache recurrence from
//! [`crate::vertical`]: consecutive candidates of a sorted level batch
//! share a (k-1)-prefix, whose bitmap (and, lazily, tid list) is computed
//! once per group. Counting agreement with the horizontal counters is
//! property-tested in `tests/backend_props.rs`.

use crate::counter::SupportCounter;
use cfq_types::{ItemId, Itemset, TransactionDb};
use std::cell::Cell;

/// Words ANDed per cache chunk: 512 × 8 B = 4 KiB, so a prefix chunk and
/// an item chunk sit together comfortably inside L1 while the inner loop
/// sweeps the candidates of a group.
const CHUNK_WORDS: usize = 512;

/// Per-item transaction-id bits: a slot into the dense arena, or a sorted
/// tid list for items too sparse to be worth a full-width bitmap.
#[derive(Clone, Debug)]
enum ItemBits {
    /// Word offset of this item's row in the dense arena.
    Dense(usize),
    /// Sorted transaction ids (density < 1/64).
    Sparse(Vec<u32>),
}

/// Inverted bitmap index: per item, the set of transactions containing it,
/// packed 64 tids per `u64`. Build once, reuse across levels.
pub struct BitmapIndex {
    n_transactions: usize,
    /// Words per dense item row (`⌈n_transactions / 64⌉`).
    words: usize,
    /// Contiguous arena of all dense item rows.
    dense: Vec<u64>,
    items: Vec<ItemBits>,
    /// Singleton supports, precomputed at build time.
    supports: Vec<u64>,
}

impl BitmapIndex {
    /// Inverts the database (one pass) into per-item bitmaps, keeping
    /// items with density below 1/64 as sorted tid lists.
    pub fn build(db: &TransactionDb) -> BitmapIndex {
        let words = db.len().div_ceil(64);
        let mut tids: Vec<Vec<u32>> = vec![Vec::new(); db.n_items()];
        for (tid, t) in db.iter().enumerate() {
            for &i in t {
                tids[i.index()].push(tid as u32);
            }
        }
        let mut dense = Vec::new();
        let mut items = Vec::with_capacity(tids.len());
        let mut supports = Vec::with_capacity(tids.len());
        for list in tids {
            supports.push(list.len() as u64);
            if list.len() < words {
                items.push(ItemBits::Sparse(list));
            } else {
                let slot = dense.len();
                dense.resize(slot + words, 0u64);
                for tid in list {
                    dense[slot + (tid as usize >> 6)] |= 1u64 << (tid & 63);
                }
                items.push(ItemBits::Dense(slot));
            }
        }
        BitmapIndex { n_transactions: db.len(), words, dense, items, supports }
    }

    /// Number of transactions in the indexed database.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Words per dense item row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Support of a single item (free: precomputed at build time).
    pub fn item_support(&self, item: ItemId) -> u64 {
        self.supports[item.index()]
    }

    /// The item's dense word row, if it has one.
    fn item_words(&self, item: ItemId) -> Option<&[u64]> {
        match self.items[item.index()] {
            ItemBits::Dense(slot) => Some(&self.dense[slot..slot + self.words]),
            ItemBits::Sparse(_) => None,
        }
    }

    /// Is transaction `tid` in item `i`'s tidset?
    fn contains(&self, item: ItemId, tid: u32) -> bool {
        match &self.items[item.index()] {
            ItemBits::Dense(slot) => {
                self.dense[slot + (tid as usize >> 6)] >> (tid & 63) & 1 == 1
            }
            ItemBits::Sparse(list) => list.binary_search(&tid).is_ok(),
        }
    }

    /// Writes item `i`'s bits into `out` (an all-`words` buffer).
    fn write_item(&self, item: ItemId, out: &mut [u64]) {
        match &self.items[item.index()] {
            ItemBits::Dense(slot) => out.copy_from_slice(&self.dense[*slot..slot + self.words]),
            ItemBits::Sparse(list) => {
                out.fill(0);
                for &tid in list {
                    out[tid as usize >> 6] |= 1u64 << (tid & 63);
                }
            }
        }
    }

    /// `acc ← acc ∩ t(item)`; returns words touched (for AND accounting).
    fn and_into(&self, acc: &mut [u64], item: ItemId) -> u64 {
        match &self.items[item.index()] {
            ItemBits::Dense(slot) => {
                for (a, w) in acc.iter_mut().zip(&self.dense[*slot..slot + self.words]) {
                    *a &= w;
                }
                self.words as u64
            }
            ItemBits::Sparse(list) => {
                // Keep only the accumulator bits at the item's few tids:
                // cheaper than materializing the sparse row.
                let survivors: Vec<u32> = list
                    .iter()
                    .copied()
                    .filter(|&tid| acc[tid as usize >> 6] >> (tid & 63) & 1 == 1)
                    .collect();
                acc.fill(0);
                for tid in survivors {
                    acc[tid as usize >> 6] |= 1u64 << (tid & 63);
                }
                (list.len() as u64).max(1)
            }
        }
    }

    /// The bitmap of an itemset (left-deep AND), plus its popcount.
    pub fn bitmap(&self, set: &Itemset) -> (Vec<u64>, u64) {
        let mut acc = vec![0u64; self.words];
        let items: Vec<ItemId> = set.iter().collect();
        if items.is_empty() {
            // The empty set's tidset is every transaction.
            acc.fill(!0u64);
            if self.words > 0 {
                let tail = self.n_transactions & 63;
                if tail != 0 {
                    acc[self.words - 1] = (1u64 << tail) - 1;
                }
            }
            return (acc, self.n_transactions as u64);
        }
        self.write_item(items[0], &mut acc);
        for &i in &items[1..] {
            self.and_into(&mut acc, i);
        }
        let support = acc.iter().map(|w| w.count_ones() as u64).sum();
        (acc, support)
    }

    /// Support of an itemset.
    pub fn support(&self, set: &Itemset) -> u64 {
        self.bitmap(set).1
    }
}

/// Extracts the set tids of a bitmap as a sorted u32 list.
fn bits_to_tids(words: &[u64], capacity: u64) -> Vec<u32> {
    let mut out = Vec::with_capacity(capacity as usize);
    for (wi, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros();
            out.push((wi as u32) << 6 | b);
            w &= w - 1;
        }
    }
    out
}

/// A [`SupportCounter`] backed by a [`BitmapIndex`].
///
/// Candidates of a sorted batch are grouped by shared (k-1)-prefix; each
/// group's prefix bitmap is ANDed once (the Eclat recurrence), then the
/// group is counted either by cache-chunked dense word loops or — when
/// the prefix has gone sparse at level ≥ 3 — by the diffset probe path.
pub struct BitmapCounter<'a> {
    index: &'a BitmapIndex,
    /// u64 word operations performed by AND/popcount loops (probe paths
    /// count one per tid probed) — the `cfq_mining_backend_words_anded`
    /// currency.
    words_anded: Cell<u64>,
}

impl<'a> BitmapCounter<'a> {
    /// Wraps an index.
    pub fn new(index: &'a BitmapIndex) -> Self {
        BitmapCounter { index, words_anded: Cell::new(0) }
    }

    /// Word operations performed so far (monotonic across `count` calls).
    pub fn words_anded(&self) -> u64 {
        self.words_anded.get()
    }

    fn add_words(&self, n: u64) {
        self.words_anded.set(self.words_anded.get() + n);
    }

    /// Counts one prefix group: candidates `prefix ∪ {last}` for each
    /// `last` in `lasts`, writing supports into `out`.
    fn count_group(&self, prefix: &[ItemId], lasts: &[ItemId], out: &mut Vec<u64>) {
        let idx = self.index;
        let words = idx.words;
        // Level 1: singleton supports are precomputed.
        if prefix.is_empty() {
            out.extend(lasts.iter().map(|&i| idx.item_support(i)));
            return;
        }
        let prefix_set: Itemset = prefix.iter().copied().collect();
        let (prefix_words, prefix_support) = idx.bitmap(&prefix_set);
        self.add_words((prefix.len() as u64) * words as u64);
        if prefix_support == 0 {
            out.extend(std::iter::repeat_n(0, lasts.len()));
            return;
        }

        // Diffset path: at level ≥ 3 a correlated prefix usually survives
        // in far fewer tids than it has words; probing those tids against
        // each item (support = prefix_support − |t(P) \ t(i)|) replaces
        // whole-row ANDs with |t(P)| bit probes per candidate.
        if prefix.len() >= 2 && prefix_support < words as u64 {
            let prefix_tids = bits_to_tids(&prefix_words, prefix_support);
            for &last in lasts {
                let diff = prefix_tids.iter().filter(|&&t| !idx.contains(last, t)).count() as u64;
                self.add_words(prefix_support);
                out.push(prefix_support - diff);
            }
            return;
        }

        // Dense path: chunk the word range so the prefix chunk stays
        // L1-resident while the inner loop sweeps the group's items.
        let base = out.len();
        out.extend(std::iter::repeat_n(0, lasts.len()));
        let mut sparse_pending = false;
        for chunk_start in (0..words).step_by(CHUNK_WORDS) {
            let chunk_end = (chunk_start + CHUNK_WORDS).min(words);
            let p = &prefix_words[chunk_start..chunk_end];
            for (ci, &last) in lasts.iter().enumerate() {
                let Some(item_words) = idx.item_words(last) else {
                    sparse_pending = true;
                    continue;
                };
                let w = &item_words[chunk_start..chunk_end];
                // Level 2 accumulates the intersection popcount directly;
                // deeper levels accumulate the diffset |t(P) \ t(i)| and
                // convert to support once per candidate below.
                out[base + ci] += if prefix.len() >= 2 {
                    p.iter().zip(w).map(|(&a, &b)| (a & !b).count_ones() as u64).sum::<u64>()
                } else {
                    p.iter().zip(w).map(|(&a, &b)| (a & b).count_ones() as u64).sum::<u64>()
                };
                self.add_words((chunk_end - chunk_start) as u64);
            }
        }
        for (ci, &last) in lasts.iter().enumerate() {
            if idx.item_words(last).is_some() && prefix.len() >= 2 {
                out[base + ci] = prefix_support - out[base + ci];
            }
        }
        // Sparse last items: probe their few tids against the prefix.
        if sparse_pending {
            for (ci, &last) in lasts.iter().enumerate() {
                if idx.item_words(last).is_some() {
                    continue;
                }
                let ItemBits::Sparse(list) = &idx.items[last.index()] else { unreachable!() };
                let sup = list
                    .iter()
                    .filter(|&&t| prefix_words[t as usize >> 6] >> (t & 63) & 1 == 1)
                    .count() as u64;
                self.add_words((list.len() as u64).max(1));
                out[base + ci] = sup;
            }
        }
    }
}

impl SupportCounter for BitmapCounter<'_> {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        debug_assert_eq!(db.len(), self.index.n_transactions, "index/db mismatch");
        let mut counts = Vec::with_capacity(candidates.len());
        // Group consecutive candidates sharing a (k-1)-prefix.
        let mut i = 0usize;
        while i < candidates.len() {
            let items = candidates[i].as_slice();
            if items.is_empty() {
                counts.push(db.len() as u64);
                i += 1;
                continue;
            }
            let (prefix, _) = items.split_at(items.len() - 1);
            let mut lasts: Vec<ItemId> = Vec::new();
            let mut j = i;
            while j < candidates.len() {
                let c = candidates[j].as_slice();
                if c.len() != items.len() || &c[..c.len() - 1] != prefix {
                    break;
                }
                lasts.push(c[c.len() - 1]);
                j += 1;
            }
            self.count_group(prefix, &lasts, &mut counts);
            i = j;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::NaiveCounter;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[1, 2, 3],
                &[0, 2, 4],
                &[1, 2],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4, 5],
            ],
        )
    }

    #[test]
    fn index_build_supports_and_bitmaps() {
        let d = db();
        let idx = BitmapIndex::build(&d);
        assert_eq!(idx.n_transactions(), 6);
        assert_eq!(idx.words(), 1);
        assert_eq!(idx.item_support(ItemId(2)), 6);
        assert_eq!(idx.item_support(ItemId(5)), 2);
        assert_eq!(idx.support(&[1u32, 3].into()), 3);
        assert_eq!(idx.support(&[0u32, 5].into()), 1);
        // Empty set: all transactions, with the tail word masked.
        let (bits, sup) = idx.bitmap(&Itemset::empty());
        assert_eq!(sup, 6);
        assert_eq!(bits, vec![0b111111u64]);
    }

    #[test]
    fn matches_naive_counter() {
        let d = db();
        let idx = BitmapIndex::build(&d);
        let cands: Vec<Itemset> = vec![
            [0u32].into(),
            [0u32, 1].into(),
            [0u32, 2].into(),
            [1u32, 2, 3].into(),
            [3u32, 4, 5].into(),
        ];
        let c = BitmapCounter::new(&idx);
        let v = c.count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
        assert!(c.words_anded() > 0, "AND accounting must move");
    }

    #[test]
    fn prefix_groups_handle_batches() {
        let d = db();
        let idx = BitmapIndex::build(&d);
        let cands: Vec<Itemset> = vec![
            [0u32, 1, 2].into(),
            [0u32, 1, 3].into(),
            [0u32, 1, 4].into(),
            [0u32, 2, 3].into(),
            [1u32, 2, 3].into(),
        ];
        let v = BitmapCounter::new(&idx).count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
    }

    #[test]
    fn sparse_items_probe_correctly() {
        // 130 transactions → 3 words; items 1/2 appear twice (sparse),
        // item 0 everywhere (dense).
        let mut rows: Vec<Vec<u32>> = (0..130).map(|_| vec![0u32]).collect();
        rows[7].push(1);
        rows[127].push(1);
        rows[64].push(2);
        rows[129].push(2);
        let rows: Vec<Vec<ItemId>> =
            rows.into_iter().map(|r| r.into_iter().map(ItemId).collect()).collect();
        let d = TransactionDb::new(3, rows).unwrap();
        let idx = BitmapIndex::build(&d);
        assert!(idx.item_words(ItemId(1)).is_none(), "item 1 should be sparse");
        assert!(idx.item_words(ItemId(0)).is_some(), "item 0 should be dense");
        let cands: Vec<Itemset> = vec![
            [0u32].into(),
            [1u32].into(),
            [0u32, 1].into(),
            [0u32, 2].into(),
            [1u32, 2].into(),
            [0u32, 1, 2].into(),
        ];
        let v = BitmapCounter::new(&idx).count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
    }

    #[test]
    fn deep_levels_take_the_diffset_path() {
        // 100 rows, a 4-item pattern in only 3 of them: any 2-prefix
        // survives in < words tids, forcing the sparse-prefix diffset
        // probes at level 3+.
        let mut rows: Vec<Vec<u32>> = (0..100).map(|i| vec![i % 7 + 10]).collect();
        for i in [11, 47, 93] {
            rows[i] = vec![0, 1, 2, 3];
        }
        let rows: Vec<Vec<ItemId>> = rows
            .into_iter()
            .map(|r| {
                let mut r: Vec<ItemId> = r.into_iter().map(ItemId).collect();
                r.sort();
                r
            })
            .collect();
        let d = TransactionDb::new(17, rows).unwrap();
        let idx = BitmapIndex::build(&d);
        let cands: Vec<Itemset> =
            vec![[0u32, 1, 2].into(), [0u32, 1, 3].into(), [0u32, 1, 2, 3].into()];
        let v = BitmapCounter::new(&idx).count(&d, &cands);
        let n = NaiveCounter.count(&d, &cands);
        assert_eq!(v, n);
    }

    #[test]
    fn randomized_agreement_with_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1999);
        for round in 0..25 {
            let n_items = rng.gen_range(3..10);
            // Mix tiny and >64-row databases so both word counts occur.
            let n_rows = if round % 2 == 0 { rng.gen_range(1..30) } else { rng.gen_range(65..200) };
            let txs: Vec<Vec<ItemId>> = (0..n_rows)
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let idx = BitmapIndex::build(&d);
            let k = rng.gen_range(1..5usize);
            let mut cands: Vec<Itemset> = (0..rng.gen_range(1..25))
                .map(|_| (0..k).map(|_| rng.gen_range(0..n_items as u32)).collect())
                .collect();
            cands.sort();
            cands.dedup();
            cands.retain(|c: &Itemset| !c.is_empty());
            let v = BitmapCounter::new(&idx).count(&d, &cands);
            let n = NaiveCounter.count(&d, &cands);
            assert_eq!(v, n, "round {round}");
        }
    }

    #[test]
    fn empty_database_counts_zero() {
        let d = TransactionDb::new(4, Vec::<Vec<ItemId>>::new()).unwrap();
        let idx = BitmapIndex::build(&d);
        assert_eq!(idx.words(), 0);
        let cands: Vec<Itemset> = vec![[0u32].into(), [0u32, 1].into()];
        assert_eq!(BitmapCounter::new(&idx).count(&d, &cands), vec![0, 0]);
    }
}

//! Horizontally sharded support counting — the SON/Partition trick
//! (Savasere, Omiecinski & Navathe, VLDB 1995) applied to candidate
//! counting instead of candidate generation.
//!
//! A [`ShardedRun`] splits the CSR [`TransactionDb`] into `P` contiguous
//! row ranges (item-balanced, via [`TransactionDb::chunks`]), counts each
//! level's candidates independently per shard, and merges the per-shard
//! partial vectors at a barrier per level. Because support is *additive
//! over any row partition*, the merged counts are bit-identical to an
//! unsharded scan — no approximation, no second verification pass.
//!
//! Per-shard AprioriTid-style trimming stays sound for the same reason:
//! every trim pass uses the **global** live set (the union of the next
//! level's candidates, which is shard-independent), and trimming is
//! row-local, so the concatenation of the per-shard trims *is* the global
//! trim restricted to each shard's rows. [`crate::trim::TrimResult::check_exactness`]
//! is the per-shard proof obligation (debug-asserted here, exhaustively
//! interleaved in `cfq-model`'s `sharded_trim` model): no row with enough
//! live items is dropped, and surviving rows are exactly live-filtered.
//!
//! Work accounting is shard-transparent: one counted level charges one
//! database scan whose extent is the *sum* of the shard extents, and one
//! trim pass whose drops are the summed per-shard drops — identical to
//! what the unsharded path would have recorded.

use crate::backend::{self, CountingBackend, ResolvedBackend};
use crate::bitmap::{BitmapCounter, BitmapIndex};
use crate::counter::{SupportCounter, TrieCounter};
use crate::stats::ScanStats;
use crate::trim::{trim_db, LiveSet};
use crate::vertical::{TidsetIndex, VerticalCounter};
use cfq_types::{ItemId, Itemset, TransactionDb};

/// One horizontal shard: a contiguous row range of the source database,
/// its cumulatively trimmed working copy, and lazily built vertical
/// indices (over the shard's *untrimmed* rows, mirroring `CountingRun`).
struct Shard {
    base: TransactionDb,
    working: Option<TransactionDb>,
    bitmap: Option<BitmapIndex>,
    tidset: Option<TidsetIndex>,
}

impl Shard {
    /// The database this shard currently counts horizontal levels on.
    fn current(&self) -> &TransactionDb {
        self.working.as_ref().unwrap_or(&self.base)
    }
}

/// What one shard worker produced for one counted level.
struct ShardLevel {
    counts: Vec<Vec<u64>>,
    rows: u64,
    items: u64,
    rows_dropped: u64,
    items_dropped: u64,
    words_anded: u64,
}

/// Per-run sharded counting state (see the module docs).
pub struct ShardedRun {
    shards: Vec<Shard>,
    backend: CountingBackend,
    base_rows: u64,
    base_items: u64,
}

impl ShardedRun {
    /// Splits `db` into at most `n_shards` contiguous, item-balanced row
    /// ranges (fewer when the database is too small; always at least
    /// one). The split materializes each range as its own CSR store so
    /// shard workers trim and scan fully independent memory.
    pub fn new(db: &TransactionDb, n_shards: usize, backend: CountingBackend) -> ShardedRun {
        let mut shards: Vec<Shard> = db
            .chunks(n_shards.max(1))
            .iter()
            .map(|c| {
                let rows: Vec<Vec<ItemId>> = (c.first_row()..c.first_row() + c.len())
                    .map(|i| db.transaction(i).to_vec())
                    .collect();
                let base = TransactionDb::new(db.n_items(), rows)
                    .expect("shard rows come from a valid database");
                Shard { base, working: None, bitmap: None, tidset: None }
            })
            .collect();
        if shards.is_empty() {
            // Empty database: one empty shard keeps the control flow (and
            // the zero-extent accounting) identical to the unsharded path.
            let base = TransactionDb::new(db.n_items(), Vec::new())
                .expect("an empty database is valid");
            shards.push(Shard { base, working: None, bitmap: None, tidset: None });
        }
        ShardedRun {
            shards,
            backend,
            base_rows: db.len() as u64,
            base_items: db.total_items() as u64,
        }
    }

    /// Number of shards actually in use (after small-database clamping).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Row counts per shard, in row order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.base.len()).collect()
    }

    /// The configured (unresolved) backend axis.
    pub fn backend(&self) -> CountingBackend {
        self.backend
    }

    /// Discards every shard's trimmed working copy, restarting trimming
    /// from the full base rows. Vertical indices (built over the base and
    /// already charged) are kept. Used by the optimizer's sequential mode,
    /// where each lattice trims for its own candidates from scratch.
    pub fn reset_trim(&mut self) {
        for s in &mut self.shards {
            s.working = None;
        }
    }

    /// Decides how to count level `level` — the same crossover as
    /// `CountingRun::resolve`, computed over the *global* row count so a
    /// sharded run resolves each level exactly like its unsharded twin.
    pub fn resolve(&self, level: usize, n_candidates: usize, scan: &ScanStats) -> ResolvedBackend {
        match self.backend {
            CountingBackend::Horizontal => ResolvedBackend::Horizontal,
            CountingBackend::Tidset => ResolvedBackend::Tidset,
            CountingBackend::Bitmap => ResolvedBackend::Bitmap,
            CountingBackend::Auto => {
                if level <= 2 {
                    return ResolvedBackend::Bitmap;
                }
                let words = (self.base_rows as usize).div_ceil(64) as u64;
                let word_volume = (n_candidates as u64).saturating_mul(words);
                let horizontal_volume =
                    scan.extents.last().map(|e| e.items).unwrap_or(self.base_items);
                if word_volume <= horizontal_volume {
                    ResolvedBackend::Bitmap
                } else {
                    ResolvedBackend::Horizontal
                }
            }
        }
    }

    /// Counts every batch of `batches` at `level` with horizontal row
    /// scans, one worker thread per shard, merging the per-shard partial
    /// vectors at the barrier. With `trim_to = Some((live, min_len))`
    /// each shard first trims its working rows against the shared global
    /// live set (the soundness argument is in the module docs).
    ///
    /// Records exactly what the unsharded path would: one optional trim
    /// pass (summed drops), one database scan, one extent whose rows and
    /// items are summed over shards.
    pub fn count_batches(
        &mut self,
        batches: &[&[Itemset]],
        level: usize,
        trim_to: Option<(&LiveSet, usize)>,
        db_scans: &mut u64,
        scan: &mut ScanStats,
    ) -> Vec<Vec<u64>> {
        let n_shards = self.shards.len();
        let results: Vec<ShardLevel> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    s.spawn(move || {
                        let (mut rows_dropped, mut items_dropped) = (0u64, 0u64);
                        if let Some((live, min_len)) = trim_to {
                            let cur = shard.current();
                            let r = trim_db(cur, live, min_len);
                            debug_assert!(
                                r.check_exactness(cur, live, min_len).is_ok(),
                                "per-shard trim lost a candidate-bearing row: {}",
                                r.check_exactness(cur, live, min_len).unwrap_err()
                            );
                            rows_dropped = r.rows_dropped;
                            items_dropped = r.items_dropped;
                            shard.working = Some(r.db);
                        }
                        let cur = shard.current();
                        let counts: Vec<Vec<u64>> =
                            batches.iter().map(|b| TrieCounter.count(cur, b)).collect();
                        ShardLevel {
                            counts,
                            rows: cur.len() as u64,
                            items: cur.total_items() as u64,
                            rows_dropped,
                            items_dropped,
                            words_anded: 0,
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        let (counts, rows, items) = merge_shard_levels(batches, &results);
        if trim_to.is_some() {
            let dropped_rows: u64 = results.iter().map(|r| r.rows_dropped).sum();
            let dropped_items: u64 = results.iter().map(|r| r.items_dropped).sum();
            scan.record_trim(dropped_rows, dropped_items);
        }
        *db_scans += 1;
        scan.record_extent(level, rows, items);
        backend::metric_shard_levels(n_shards);
        backend::metric_shard_merges(n_shards as u64);
        counts
    }

    /// Single-batch convenience over [`ShardedRun::count_batches`].
    pub fn count(
        &mut self,
        candidates: &[Itemset],
        level: usize,
        trim_to: Option<(&LiveSet, usize)>,
        db_scans: &mut u64,
        scan: &mut ScanStats,
    ) -> Vec<u64> {
        self.count_batches(&[candidates], level, trim_to, db_scans, scan).remove(0)
    }

    /// Counts `candidates` at `level` through per-shard vertical indices,
    /// one worker thread per shard, summing the partial vectors. The
    /// first use of an index kind charges one database scan (every shard
    /// inverts its rows once, concurrently) with the full summed extent —
    /// the same accounting as `CountingRun::count_vertical`.
    pub fn count_vertical(
        &mut self,
        resolved: ResolvedBackend,
        candidates: &[Itemset],
        level: usize,
        db_scans: &mut u64,
        scan: &mut ScanStats,
    ) -> Vec<u64> {
        assert!(
            resolved.is_vertical(),
            "count_vertical called with a horizontal resolution"
        );
        let n_shards = self.shards.len();
        let charge_scan = match resolved {
            ResolvedBackend::Tidset => self.shards.iter().any(|s| s.tidset.is_none()),
            ResolvedBackend::Bitmap => self.shards.iter().any(|s| s.bitmap.is_none()),
            ResolvedBackend::Horizontal => unreachable!(),
        };
        let results: Vec<ShardLevel> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    s.spawn(move || {
                        let (counts, words_anded) = match resolved {
                            ResolvedBackend::Tidset => {
                                if shard.tidset.is_none() {
                                    shard.tidset = Some(TidsetIndex::build(&shard.base));
                                }
                                let c = VerticalCounter::new(shard.tidset.as_ref().unwrap())
                                    .count(&shard.base, candidates);
                                (c, 0)
                            }
                            ResolvedBackend::Bitmap => {
                                if shard.bitmap.is_none() {
                                    shard.bitmap = Some(BitmapIndex::build(&shard.base));
                                }
                                let counter =
                                    BitmapCounter::new(shard.bitmap.as_ref().unwrap());
                                let c = counter.count(&shard.base, candidates);
                                (c, counter.words_anded())
                            }
                            ResolvedBackend::Horizontal => unreachable!(),
                        };
                        ShardLevel {
                            counts: vec![counts],
                            rows: shard.base.len() as u64,
                            items: shard.base.total_items() as u64,
                            rows_dropped: 0,
                            items_dropped: 0,
                            words_anded,
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        let (mut counts, _, _) = merge_shard_levels(&[candidates], &results);
        if charge_scan {
            *db_scans += 1;
            scan.record_extent(level, self.base_rows, self.base_items);
        }
        let words: u64 = results.iter().map(|r| r.words_anded).sum();
        if words > 0 {
            backend::metric_words_anded(words);
        }
        backend::metric_shard_levels(n_shards);
        backend::metric_shard_merges(n_shards as u64);
        counts.remove(0)
    }
}

/// The level barrier: element-wise sum of per-shard partial vectors,
/// plus the summed scan extent.
fn merge_shard_levels(
    batches: &[&[Itemset]],
    results: &[ShardLevel],
) -> (Vec<Vec<u64>>, u64, u64) {
    let mut merged: Vec<Vec<u64>> = batches.iter().map(|b| vec![0u64; b.len()]).collect();
    let (mut rows, mut items) = (0u64, 0u64);
    for r in results {
        for (acc, partial) in merged.iter_mut().zip(&r.counts) {
            debug_assert_eq!(acc.len(), partial.len());
            for (a, p) in acc.iter_mut().zip(partial) {
                *a += p;
            }
        }
        rows += r.rows;
        items += r.items;
    }
    (merged, rows, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::count_supports_with;
    use crate::stats::WorkStats;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[1, 2, 3],
                &[0, 2, 4],
                &[1, 5],
                &[2, 3, 4, 5],
                &[5],
                &[0, 5],
            ],
        )
    }

    fn cands() -> Vec<Itemset> {
        let mut c: Vec<Itemset> = (0..6u32).map(|i| [i].into()).collect();
        c.push([1u32, 2].into());
        c.push([2u32, 3].into());
        c.sort();
        c
    }

    #[test]
    fn sharded_counts_equal_unsharded_for_every_shard_count() {
        let d = db();
        let c = cands();
        let expected = count_supports_with(&d, &[&c], 1).remove(0);
        for shards in [1, 2, 3, 5, 16] {
            let mut run = ShardedRun::new(&d, shards, CountingBackend::Horizontal);
            let mut stats = WorkStats::new();
            let got = run.count(&c, 1, None, &mut stats.db_scans, &mut stats.scan);
            assert_eq!(got, expected, "shards={shards}");
            assert_eq!(stats.db_scans, 1);
            assert_eq!(stats.scan.extents.len(), 1);
            assert_eq!(stats.scan.rows_scanned, d.len() as u64);
            assert_eq!(stats.scan.items_scanned, d.total_items() as u64);
        }
    }

    #[test]
    fn per_shard_trim_matches_global_trim_accounting() {
        let d = db();
        let c: Vec<Itemset> = vec![[1u32, 2].into(), [2u32, 3].into()];
        let live = LiveSet::from_items(6, c.iter().flat_map(|s| s.iter()));
        let global = trim_db(&d, &live, 2);
        let expected = count_supports_with(&global.db, &[&c], 1).remove(0);
        for shards in [1, 2, 3, 7] {
            let mut run = ShardedRun::new(&d, shards, CountingBackend::Horizontal);
            let mut stats = WorkStats::new();
            let got =
                run.count(&c, 2, Some((&live, 2)), &mut stats.db_scans, &mut stats.scan);
            assert_eq!(got, expected, "shards={shards}");
            assert_eq!(stats.scan.trim_passes, 1, "one logical trim pass per level");
            assert_eq!(stats.scan.trim_rows_dropped, global.rows_dropped);
            assert_eq!(stats.scan.trim_items_dropped, global.items_dropped);
            assert_eq!(stats.scan.rows_scanned, global.db.len() as u64);
            assert_eq!(stats.scan.items_scanned, global.db.total_items() as u64);
        }
    }

    #[test]
    fn vertical_backends_merge_and_charge_one_scan() {
        let d = db();
        let c = cands();
        let expected = count_supports_with(&d, &[&c], 1).remove(0);
        for backend in [CountingBackend::Tidset, CountingBackend::Bitmap] {
            let mut run = ShardedRun::new(&d, 3, backend);
            let mut stats = WorkStats::new();
            let resolved = run.resolve(1, c.len(), &stats.scan);
            assert!(resolved.is_vertical());
            let got =
                run.count_vertical(resolved, &c, 1, &mut stats.db_scans, &mut stats.scan);
            assert_eq!(got, expected, "{backend}");
            assert_eq!(stats.db_scans, 1, "{backend}: index build is the only scan");
            // A second level is scan-free.
            let pairs: Vec<Itemset> = vec![[2u32, 3].into()];
            let again =
                run.count_vertical(resolved, &pairs, 2, &mut stats.db_scans, &mut stats.scan);
            assert_eq!(again, vec![d.support(&[2u32, 3].into())]);
            assert_eq!(stats.db_scans, 1, "{backend}");
            assert_eq!(stats.scan.extents.len(), 1, "{backend}");
        }
    }

    #[test]
    fn clamps_to_the_database_and_survives_empty_input() {
        let d = db();
        let run = ShardedRun::new(&d, 1000, CountingBackend::Horizontal);
        assert!(run.n_shards() <= d.len());
        assert_eq!(run.shard_sizes().iter().sum::<usize>(), d.len());

        let empty = TransactionDb::new(4, Vec::new()).unwrap();
        let mut run = ShardedRun::new(&empty, 8, CountingBackend::Horizontal);
        assert_eq!(run.n_shards(), 1);
        let c: Vec<Itemset> = vec![[0u32].into()];
        let mut stats = WorkStats::new();
        let got = run.count(&c, 1, None, &mut stats.db_scans, &mut stats.scan);
        assert_eq!(got, vec![0]);
        assert_eq!(stats.db_scans, 1);
        assert_eq!(stats.scan.rows_scanned, 0);
    }

    #[test]
    fn auto_resolution_matches_unsharded_crossover() {
        let rows: Vec<Vec<ItemId>> = (0..640)
            .map(|i| vec![ItemId(i as u32 % 4), ItemId(4 + i as u32 % 3)])
            .collect();
        let d = TransactionDb::new(7, rows).unwrap();
        let run = ShardedRun::new(&d, 4, CountingBackend::Auto);
        let unsharded = crate::backend::CountingRun::new(&d, CountingBackend::Auto);
        let mut scan = ScanStats::default();
        for (level, n) in [(1usize, 7usize), (2, 21), (3, 5)] {
            assert_eq!(run.resolve(level, n, &scan), unsharded.resolve(level, n, &scan));
        }
        scan.record_extent(3, 15, 30);
        assert_eq!(run.resolve(4, 5, &scan), unsharded.resolve(4, 5, &scan));
    }
}

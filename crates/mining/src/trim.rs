//! Per-level database reduction (AprioriTid-style transaction trimming).
//!
//! Between levels, a levelwise miner knows exactly which items can still
//! matter: level-`k+1` candidates are built from level-`k` frequent sets,
//! so any item outside their union can never appear in another candidate,
//! and any transaction left with fewer than `k+1` live items cannot
//! contain a level-`k+1` candidate. [`trim_db`] rewrites the CSR database
//! dropping both, so later scans touch only data that can still produce a
//! count. Trimming is *support-preserving* for every candidate whose items
//! are all live and whose length is at least the `min_len` used: a dropped
//! item is in no candidate, and a dropped row contains no candidate of
//! that length — so counts on the trimmed database equal counts on the
//! original (property-tested in `tests/trim_props.rs`).
//!
//! Live sets shrink monotonically across levels, so the pass composes:
//! trimming an already-trimmed database with a subset of its live items is
//! still exact.

use crate::stats::ScanStats;
use cfq_types::{ItemId, TransactionDb};

/// A dense membership bitset over the item universe, the "live item"
/// filter a trim pass keeps.
#[derive(Clone, Debug)]
pub struct LiveSet {
    bits: Vec<u64>,
    len: usize,
}

impl LiveSet {
    /// An empty set over a universe of `n_items` ids.
    pub fn empty(n_items: usize) -> Self {
        LiveSet { bits: vec![0u64; n_items.div_ceil(64)], len: 0 }
    }

    /// Builds from any iterator of item ids (duplicates are fine).
    pub fn from_items(n_items: usize, items: impl IntoIterator<Item = ItemId>) -> Self {
        let mut s = LiveSet::empty(n_items);
        for i in items {
            s.insert(i);
        }
        s
    }

    /// Inserts an id.
    #[inline]
    pub fn insert(&mut self, i: ItemId) {
        let (w, b) = (i.index() / 64, i.index() % 64);
        if self.bits[w] & (1 << b) == 0 {
            self.bits[w] |= 1 << b;
            self.len += 1;
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: ItemId) -> bool {
        let (w, b) = (i.index() / 64, i.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of live items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no item is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Outcome of one [`trim_db`] pass.
pub struct TrimResult {
    /// The reduced database (same item-id space as the input).
    pub db: TransactionDb,
    /// For each surviving row, its row index in the *input* database.
    /// Composable: map through the previous pass's provenance to reach the
    /// original TIDs (FUP/incremental paths need original row identity).
    pub provenance: Vec<u32>,
    /// Rows removed (fewer than `min_len` live items remained).
    pub rows_dropped: u64,
    /// Item occurrences removed from surviving *and* dropped rows.
    pub items_dropped: u64,
}

impl TrimResult {
    /// Checks every structural invariant a trim pass must preserve against
    /// the database it was produced from, returning the first violation:
    ///
    /// * the output is itself a valid CSR database;
    /// * `provenance` is strictly increasing (an order-preserving injection
    ///   into the input's row space — i.e. a permutation-free selection),
    ///   in bounds, and one entry per surviving row;
    /// * `rows_dropped` / `items_dropped` account exactly for the
    ///   input/output size difference;
    /// * every surviving row is a subset of its source row.
    ///
    /// [`trim_db`] runs this in debug builds; the CLI `--audit` gate and
    /// the trim property tests run it explicitly.
    pub fn check_invariants(&self, input: &TransactionDb) -> Result<(), String> {
        self.db.validate().map_err(|e| e.to_string())?;
        if self.provenance.len() != self.db.len() {
            return Err(format!(
                "provenance has {} entries for {} surviving rows",
                self.provenance.len(),
                self.db.len()
            ));
        }
        if !self.provenance.windows(2).all(|w| w[0] < w[1]) {
            return Err("provenance is not strictly increasing".into());
        }
        if self.provenance.last().is_some_and(|&t| t as usize >= input.len()) {
            return Err(format!(
                "provenance references row {} of a {}-row input",
                self.provenance.last().unwrap(),
                input.len()
            ));
        }
        if self.rows_dropped != (input.len() - self.db.len()) as u64 {
            return Err(format!(
                "rows_dropped = {} but {} of {} rows survived",
                self.rows_dropped,
                self.db.len(),
                input.len()
            ));
        }
        if self.items_dropped != (input.total_items() - self.db.total_items()) as u64 {
            return Err(format!(
                "items_dropped = {} but the arena shrank by {}",
                self.items_dropped,
                input.total_items() - self.db.total_items()
            ));
        }
        for (row, &src) in self.provenance.iter().enumerate() {
            let out = self.db.transaction(row);
            let source = input.transaction(src as usize);
            if !cfq_types::contains_sorted(source, out) {
                return Err(format!(
                    "surviving row {row} is not a subset of input row {src}"
                ));
            }
        }
        Ok(())
    }

    /// Checks that this pass is the *exact* trim of `input` under
    /// (`live`, `min_len`) — not merely structurally consistent:
    ///
    /// * **completeness** — every input row with at least `min_len` live
    ///   items survives (an over-eager trim that drops such a row can
    ///   lose candidate support);
    /// * **exactness** — each surviving row equals the live-filter of its
    ///   source row (no item kept that is dead, none dropped that is
    ///   live).
    ///
    /// Together with [`TrimResult::check_invariants`] this is the proof
    /// obligation sharded mining discharges per shard: a row partition of
    /// the database trimmed shard-by-shard against the *same* `live` set
    /// is then row-for-row identical to the global trim, so per-shard
    /// counts still sum to the global counts.
    pub fn check_exactness(
        &self,
        input: &TransactionDb,
        live: &LiveSet,
        min_len: usize,
    ) -> Result<(), String> {
        let min_len = min_len.max(1);
        let mut next = 0usize; // cursor into provenance
        for (tid, row) in input.iter().enumerate() {
            let live_len = row.iter().filter(|&&i| live.contains(i)).count();
            let survived = self.provenance.get(next) == Some(&(tid as u32));
            if live_len >= min_len && !survived {
                return Err(format!(
                    "input row {tid} has {live_len} live items (>= {min_len}) but was dropped"
                ));
            }
            if survived {
                let out = self.db.transaction(next);
                let expect: Vec<ItemId> =
                    row.iter().copied().filter(|&i| live.contains(i)).collect();
                if out != expect.as_slice() {
                    return Err(format!(
                        "surviving row {next} (input row {tid}) is not the live-filter of its source"
                    ));
                }
                next += 1;
            }
        }
        Ok(())
    }
}

/// Rewrites `db`, keeping only items in `live` and only transactions
/// retaining at least `min_len` items. Pass `min_len = k` before counting
/// level `k`. Single linear sweep of the CSR arena.
pub fn trim_db(db: &TransactionDb, live: &LiveSet, min_len: usize) -> TrimResult {
    let min_len = min_len.max(1);
    let mut items: Vec<ItemId> = Vec::with_capacity(db.total_items());
    let mut offsets: Vec<u32> = Vec::with_capacity(db.len() + 1);
    offsets.push(0);
    let mut provenance: Vec<u32> = Vec::with_capacity(db.len());
    let mut rows_dropped = 0u64;
    for (tid, t) in db.iter().enumerate() {
        let row_start = items.len();
        items.extend(t.iter().copied().filter(|&i| live.contains(i)));
        if items.len() - row_start >= min_len {
            offsets.push(items.len() as u32);
            provenance.push(tid as u32);
        } else {
            items.truncate(row_start);
            rows_dropped += 1;
        }
    }
    items.shrink_to_fit();
    let items_dropped = (db.total_items() - items.len()) as u64;
    let result = TrimResult {
        db: TransactionDb::from_parts(db.n_items(), items, offsets),
        provenance,
        rows_dropped,
        items_dropped,
    };
    debug_assert!(
        result.check_invariants(db).is_ok(),
        "trim pass broke an invariant: {}",
        result.check_invariants(db).unwrap_err()
    );
    result
}

/// [`trim_db`] plus bookkeeping: records the pass in `scan` stats.
pub fn trim_db_recorded(
    db: &TransactionDb,
    live: &LiveSet,
    min_len: usize,
    scan: &mut ScanStats,
) -> TrimResult {
    let r = trim_db(db, live, min_len);
    scan.record_trim(r.rows_dropped, r.items_dropped);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_types::Itemset;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[1, 2, 3],
                &[0, 2, 4],
                &[1, 5],
                &[2, 3, 4, 5],
                &[5],
            ],
        )
    }

    #[test]
    fn live_set_basics() {
        let mut s = LiveSet::empty(130);
        assert!(s.is_empty());
        s.insert(ItemId(0));
        s.insert(ItemId(64));
        s.insert(ItemId(129));
        s.insert(ItemId(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(ItemId(64)));
        assert!(!s.contains(ItemId(63)));
    }

    #[test]
    fn trims_items_and_short_rows() {
        let d = db();
        let live = LiveSet::from_items(6, [1, 2, 3].map(ItemId));
        let r = trim_db(&d, &live, 2);
        // Row 0 → {1,2,3}; row 1 → {1,2,3}; row 2 → {2} dropped; row 3 →
        // {1} dropped; row 4 → {2,3}; row 5 → {} dropped.
        assert_eq!(r.db.len(), 3);
        assert_eq!(r.provenance, vec![0, 1, 4]);
        assert_eq!(r.rows_dropped, 3);
        assert_eq!(r.db.total_items(), 8);
        assert_eq!(r.items_dropped, (d.total_items() - 8) as u64);
        assert_eq!(r.db.transaction(2), &[ItemId(2), ItemId(3)]);
    }

    #[test]
    fn supports_preserved_for_live_candidates() {
        let d = db();
        let live = LiveSet::from_items(6, [1, 2, 3].map(ItemId));
        let r = trim_db(&d, &live, 2);
        for cand in [
            Itemset::from([1u32, 2]),
            Itemset::from([2u32, 3]),
            Itemset::from([1u32, 2, 3]),
        ] {
            assert_eq!(r.db.support(&cand), d.support(&cand), "support of {cand}");
        }
    }

    #[test]
    fn composes_with_shrinking_live_sets() {
        let d = db();
        let live1 = LiveSet::from_items(6, [1, 2, 3, 4].map(ItemId));
        let r1 = trim_db(&d, &live1, 2);
        let live2 = LiveSet::from_items(6, [2, 3].map(ItemId));
        let r2 = trim_db(&r1.db, &live2, 2);
        let direct = trim_db(&d, &live2, 2);
        assert_eq!(r2.db.len(), direct.db.len());
        for i in 0..r2.db.len() {
            assert_eq!(r2.db.transaction(i), direct.db.transaction(i));
        }
        // Chained provenance reaches the original TIDs.
        let chained: Vec<u32> =
            r2.provenance.iter().map(|&i| r1.provenance[i as usize]).collect();
        assert_eq!(chained, direct.provenance);
    }

    #[test]
    fn check_invariants_accepts_real_passes_and_rejects_doctored_ones() {
        let d = db();
        let live = LiveSet::from_items(6, [1, 2, 3].map(ItemId));
        let mut r = trim_db(&d, &live, 2);
        assert!(r.check_invariants(&d).is_ok());
        // Doctored provenance: out of order.
        let orig = r.provenance.clone();
        r.provenance.swap(0, 1);
        assert!(r.check_invariants(&d).unwrap_err().contains("increasing"));
        r.provenance = orig.clone();
        // Doctored provenance: points past the input.
        *r.provenance.last_mut().unwrap() = d.len() as u32;
        assert!(r.check_invariants(&d).is_err());
        r.provenance = orig.clone();
        // Doctored accounting.
        r.rows_dropped += 1;
        assert!(r.check_invariants(&d).unwrap_err().contains("rows_dropped"));
        r.rows_dropped -= 1;
        r.items_dropped += 1;
        assert!(r.check_invariants(&d).unwrap_err().contains("items_dropped"));
        r.items_dropped -= 1;
        // Doctored provenance: maps a surviving row to a disjoint source row.
        r.provenance[2] = 3; // row {2,3} is not a subset of input row 3 = {1,5}
        r.rows_dropped = (d.len() - r.db.len()) as u64;
        assert!(r.check_invariants(&d).unwrap_err().contains("subset"));
    }

    #[test]
    fn check_exactness_accepts_real_passes_and_rejects_lossy_ones() {
        let d = db();
        let live = LiveSet::from_items(6, [1, 2, 3].map(ItemId));
        let r = trim_db(&d, &live, 2);
        assert!(r.check_exactness(&d, &live, 2).is_ok());
        // A lossy trim (dropped a row that had enough live items) passes
        // the structural invariants but fails exactness.
        let lossy = TrimResult {
            db: TransactionDb::from_u32(6, &[&[1, 2, 3], &[2, 3]]),
            provenance: vec![1, 4],
            rows_dropped: 4,
            items_dropped: (d.total_items() - 5) as u64,
        };
        assert!(lossy.check_invariants(&d).is_ok());
        let err = lossy.check_exactness(&d, &live, 2).unwrap_err();
        assert!(err.contains("was dropped"), "{err}");
        // A trim that kept a dead item fails exactness too.
        let sloppy = trim_db(&d, &LiveSet::from_items(6, [0, 1, 2, 3].map(ItemId)), 2);
        assert!(sloppy.check_exactness(&d, &live, 2).is_err());
    }

    #[test]
    fn sharded_trim_equals_global_trim() {
        // The soundness core of sharded mining: trimming each half of a
        // row partition against the same live set concatenates to the
        // global trim.
        let d = db();
        let live = LiveSet::from_items(6, [1, 2, 3].map(ItemId));
        let global = trim_db(&d, &live, 2);
        let rows = |lo: usize, hi: usize| -> TransactionDb {
            let rows: Vec<Vec<ItemId>> = (lo..hi).map(|i| d.transaction(i).to_vec()).collect();
            TransactionDb::new(d.n_items(), rows).unwrap()
        };
        let (a, b) = (rows(0, 3), rows(3, d.len()));
        let (ta, tb) = (trim_db(&a, &live, 2), trim_db(&b, &live, 2));
        ta.check_exactness(&a, &live, 2).unwrap();
        tb.check_exactness(&b, &live, 2).unwrap();
        assert_eq!(ta.db.len() + tb.db.len(), global.db.len());
        let merged: Vec<&[ItemId]> = ta.db.iter().chain(tb.db.iter()).collect();
        let globals: Vec<&[ItemId]> = global.db.iter().collect();
        assert_eq!(merged, globals);
        assert_eq!(
            ta.rows_dropped + tb.rows_dropped + ta.items_dropped + tb.items_dropped,
            global.rows_dropped + global.items_dropped
        );
    }

    #[test]
    fn empty_live_set_drops_everything() {
        let d = db();
        let r = trim_db(&d, &LiveSet::empty(6), 1);
        assert!(r.db.is_empty());
        assert_eq!(r.rows_dropped, d.len() as u64);
        assert_eq!(r.items_dropped, d.total_items() as u64);
        assert!(r.provenance.is_empty());
    }
}

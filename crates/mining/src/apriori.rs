//! Plain Apriori over a restricted item universe.

use crate::backend::{self, CountingBackend, CountingRun};
use crate::candidates::generate_candidates;
use crate::counter::{ParallelTrieCounter, SupportCounter};
use crate::frequent::FrequentSets;
use crate::shard::ShardedRun;
use crate::stats::WorkStats;
use crate::trim::{trim_db_recorded, LiveSet};
use cfq_obs as obs;
use cfq_types::{ItemId, Itemset, TransactionDb};

/// Configuration of an Apriori run.
#[derive(Clone, Debug)]
pub struct AprioriConfig {
    /// Items the lattice ranges over (the variable's domain). Must be
    /// ascending. Empty means "all items of the database".
    pub universe: Vec<ItemId>,
    /// Absolute minimum support.
    pub min_support: u64,
    /// Hard level cap; 0 = unbounded.
    pub max_level: usize,
    /// Per-level database reduction: between levels, drop items outside
    /// the next level's candidates and rows left too short to matter.
    /// Support counts are unaffected (see the `trim` module).
    pub trim: bool,
    /// Worker threads for support counting (0 = all cores). The default of
    /// 1 keeps runs deterministic in work accounting and reproducible in
    /// thread-count-sensitive benchmarks.
    pub counting_threads: usize,
    /// The support-counting substrate (see [`CountingBackend`]). The
    /// default `Horizontal` keeps the classic one-scan-per-level shape.
    pub backend: CountingBackend,
    /// Horizontal shards (0 or 1 = unsharded). With `N > 1` the database
    /// is split into N contiguous row ranges counted concurrently and
    /// merged per level ([`crate::shard::ShardedRun`]); lattices and work
    /// accounting are bit-identical to the unsharded run.
    pub shards: usize,
}

impl AprioriConfig {
    /// All items, given threshold, no level cap, trimming on, sequential
    /// counting.
    pub fn new(min_support: u64) -> Self {
        AprioriConfig {
            universe: Vec::new(),
            min_support,
            max_level: 0,
            trim: true,
            counting_threads: 1,
            backend: CountingBackend::Horizontal,
            shards: 1,
        }
    }

    /// Restricts the universe.
    pub fn with_universe(mut self, universe: Vec<ItemId>) -> Self {
        debug_assert!(universe.windows(2).all(|w| w[0] < w[1]));
        self.universe = universe;
        self
    }

    /// Caps the level.
    pub fn with_max_level(mut self, max_level: usize) -> Self {
        self.max_level = max_level;
        self
    }

    /// Enables or disables per-level database reduction.
    pub fn with_trim(mut self, trim: bool) -> Self {
        self.trim = trim;
        self
    }

    /// Sets the counting thread count (0 = all cores).
    pub fn with_counting_threads(mut self, threads: usize) -> Self {
        self.counting_threads = threads;
        self
    }

    /// Selects the support-counting backend.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the horizontal shard count (0 or 1 = unsharded).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Runs levelwise Apriori, recording work in `stats`.
///
/// This is the frequency backbone of both the Apriori⁺ baseline and (with
/// its pruning hooks, in `cfq-core`) the CAP algorithm.
pub fn apriori(db: &TransactionDb, cfg: &AprioriConfig, stats: &mut WorkStats) -> FrequentSets {
    let universe: Vec<ItemId> = if cfg.universe.is_empty() {
        (0..db.n_items() as u32).map(ItemId).collect()
    } else {
        cfg.universe.clone()
    };
    let mut run_span = obs::span(obs::Level::Debug, "apriori")
        .u64("universe", universe.len() as u64)
        .u64("min_support", cfg.min_support)
        .bool("trim", cfg.trim)
        .str("backend", cfg.backend.name())
        .u64("shards", cfg.shards.max(1) as u64);

    let mut result = FrequentSets::new();
    let counter = ParallelTrieCounter { threads: cfg.counting_threads };
    let mut run = CountingRun::new(db, cfg.backend);
    // `Some` when the run counts through P > 1 horizontal shards; the
    // unsharded path below stays byte-identical to the P = 1 run.
    let mut sharded: Option<ShardedRun> =
        (cfg.shards > 1).then(|| ShardedRun::new(db, cfg.shards, cfg.backend));

    // Level 1 always reads the full database — as a counting scan
    // (horizontal) or as the one-off index inversion pass (vertical).
    let level_started = std::time::Instant::now();
    let level_span = obs::span(obs::Level::Trace, "apriori.level").u64("level", 1);
    let candidates: Vec<Itemset> =
        universe.iter().map(|&i| Itemset::singleton(i)).collect();
    let resolved = match &sharded {
        Some(s) => s.resolve(1, candidates.len(), &stats.scan),
        None => run.resolve(1, candidates.len(), &stats.scan),
    };
    backend::metric_selected(resolved.name());
    stats.record_backend(resolved.name());
    let counts = match (&mut sharded, resolved.is_vertical()) {
        (Some(s), true) => {
            s.count_vertical(resolved, &candidates, 1, &mut stats.db_scans, &mut stats.scan)
        }
        (Some(s), false) => s.count(&candidates, 1, None, &mut stats.db_scans, &mut stats.scan),
        (None, true) => run.count_vertical(resolved, &candidates, 1, stats),
        (None, false) => {
            let counts = counter.count(db, &candidates);
            stats.record_scan();
            stats.scan.record_extent(1, db.len() as u64, db.total_items() as u64);
            counts
        }
    };
    let mut frequent: Vec<(Itemset, u64)> = candidates
        .into_iter()
        .zip(counts)
        .filter(|&(_, n)| n >= cfg.min_support)
        .collect();
    close_level_span(level_span, universe.len() as u64, frequent.len() as u64);
    let micros = level_started.elapsed().as_micros() as u64;
    backend::metric_level_micros(resolved.name(), micros);
    stats.record_level_timed(1, universe.len() as u64, frequent.len() as u64, micros);

    // The working database: `None` borrows `db` untrimmed.
    let mut trimmed: Option<TransactionDb> = None;
    let mut level = 1usize;
    while !frequent.is_empty() {
        let sets: Vec<Itemset> = frequent.iter().map(|(s, _)| s.clone()).collect();
        result.push_level(std::mem::take(&mut frequent));
        if cfg.max_level != 0 && level >= cfg.max_level {
            break;
        }
        let level_started = std::time::Instant::now();
        let level_span =
            obs::span(obs::Level::Trace, "apriori.level").u64("level", level as u64 + 1);
        let candidates = generate_candidates(&sets, |_| true);
        if candidates.is_empty() {
            break;
        }
        let n_candidates = candidates.len() as u64;
        let resolved = match &sharded {
            Some(s) => s.resolve(level + 1, candidates.len(), &stats.scan),
            None => run.resolve(level + 1, candidates.len(), &stats.scan),
        };
        backend::metric_selected(resolved.name());
        stats.record_backend(resolved.name());
        let counts = match (&mut sharded, resolved.is_vertical()) {
            (Some(s), true) => {
                // Vertical levels count off the per-shard indices: no
                // scan after the first, no trim.
                s.count_vertical(resolved, &candidates, level + 1, &mut stats.db_scans, &mut stats.scan)
            }
            (Some(s), false) => {
                // The live set is shard-independent (built from the global
                // candidates), which is what keeps per-shard trimming
                // provably lossless — see the shard module docs.
                let live = cfg.trim.then(|| {
                    LiveSet::from_items(db.n_items(), candidates.iter().flat_map(|c| c.iter()))
                });
                s.count(
                    &candidates,
                    level + 1,
                    live.as_ref().map(|l| (l, level + 1)),
                    &mut stats.db_scans,
                    &mut stats.scan,
                )
            }
            (None, true) => {
                // Vertical levels count off the index: no scan, no trim. A
                // later horizontal level (auto crossover) trims from wherever
                // the working database last stood — liveness only shrinks, so
                // skipping levels keeps the trim exact.
                run.count_vertical(resolved, &candidates, level + 1, stats)
            }
            (None, false) => {
                let cur = trimmed.as_ref().unwrap_or(db);
                let cur = if cfg.trim {
                    // Only items inside some level-(k+1) candidate can still count,
                    // and only rows keeping ≥ k+1 of them can contain one.
                    let live = LiveSet::from_items(
                        db.n_items(),
                        candidates.iter().flat_map(|c| c.iter()),
                    );
                    let r = trim_db_recorded(cur, &live, level + 1, &mut stats.scan);
                    trimmed = Some(r.db);
                    trimmed.as_ref().unwrap()
                } else {
                    cur
                };
                let counts = counter.count(cur, &candidates);
                stats.record_scan();
                stats
                    .scan
                    .record_extent(level + 1, cur.len() as u64, cur.total_items() as u64);
                counts
            }
        };
        level += 1;
        frequent = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, n)| n >= cfg.min_support)
            .collect();
        close_level_span(level_span, n_candidates, frequent.len() as u64);
        let micros = level_started.elapsed().as_micros() as u64;
        backend::metric_level_micros(resolved.name(), micros);
        stats.record_level_timed(level, n_candidates, frequent.len() as u64, micros);
    }
    run_span.record_u64("db_scans", stats.db_scans);
    run_span.record_u64("frequent_total", result.total() as u64);
    result
}

/// Attaches the level's outcome counters to its span before it closes.
fn close_level_span(mut span: obs::SpanGuard, candidates: u64, frequent: u64) {
    span.record_u64("candidates", candidates);
    span.record_u64("frequent", frequent);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // Classic tiny example.
        TransactionDb::from_u32(
            5,
            &[
                &[0, 1, 2],
                &[0, 1, 2, 3],
                &[0, 2],
                &[1, 2, 3],
                &[0, 1, 3],
                &[2, 3, 4],
            ],
        )
    }

    /// Brute-force frequent sets for cross-checking.
    fn brute(db: &TransactionDb, universe: &[ItemId], min_support: u64) -> Vec<(Itemset, u64)> {
        let all: Itemset = universe.iter().copied().collect();
        let mut out = Vec::new();
        for sub in all.all_nonempty_subsets() {
            let sup = db.support(&sub);
            if sup >= min_support {
                out.push((sub, sup));
            }
        }
        out.sort_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
        out
    }

    #[test]
    fn matches_brute_force() {
        let d = db();
        for min_support in 1..=4u64 {
            let mut stats = WorkStats::new();
            let fs = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            let expected = brute(&d, &(0..5).map(ItemId).collect::<Vec<_>>(), min_support);
            let got: Vec<(Itemset, u64)> =
                fs.iter().map(|(s, n)| (s.clone(), n)).collect();
            assert_eq!(got, expected, "min_support={min_support}");
        }
    }

    #[test]
    fn respects_universe_restriction() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = AprioriConfig::new(1).with_universe(vec![ItemId(0), ItemId(2)]);
        let fs = apriori(&d, &cfg, &mut stats);
        for (s, _) in fs.iter() {
            for i in s.iter() {
                assert!(i == ItemId(0) || i == ItemId(2));
            }
        }
        assert!(fs.contains(&[0u32, 2].into()));
        assert!(!fs.contains(&[1u32].into()));
    }

    #[test]
    fn respects_max_level() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = AprioriConfig::new(1).with_max_level(2);
        let fs = apriori(&d, &cfg, &mut stats);
        assert_eq!(fs.n_levels(), 2);
    }

    #[test]
    fn counts_scans_per_level() {
        let d = db();
        let mut stats = WorkStats::new();
        let fs = apriori(&d, &AprioriConfig::new(2), &mut stats);
        // One scan per counted level.
        assert_eq!(stats.db_scans as usize, stats.levels.len());
        assert!(fs.total() > 0);
    }

    #[test]
    fn trim_on_off_identical_results() {
        let d = db();
        for min_support in 1..=4u64 {
            let mut s_on = WorkStats::new();
            let mut s_off = WorkStats::new();
            let on = apriori(&d, &AprioriConfig::new(min_support), &mut s_on);
            let off = apriori(
                &d,
                &AprioriConfig::new(min_support).with_trim(false),
                &mut s_off,
            );
            let a: Vec<(Itemset, u64)> = on.iter().map(|(s, n)| (s.clone(), n)).collect();
            let b: Vec<(Itemset, u64)> = off.iter().map(|(s, n)| (s.clone(), n)).collect();
            assert_eq!(a, b, "min_support={min_support}");
            // ccc accounting is untouched by trimming…
            assert_eq!(s_on.support_counted, s_off.support_counted);
            assert_eq!(s_on.db_scans, s_off.db_scans);
            // …but scan volume shrinks (or at worst matches).
            assert!(s_on.scan.items_scanned <= s_off.scan.items_scanned);
        }
    }

    #[test]
    fn trim_records_scan_extents() {
        let d = db();
        let mut stats = WorkStats::new();
        apriori(&d, &AprioriConfig::new(2), &mut stats);
        assert_eq!(stats.scan.extents.len(), stats.db_scans as usize);
        assert_eq!(stats.scan.extents[0].items, d.total_items() as u64);
        assert_eq!(stats.scan.trim_passes, stats.db_scans - 1);
        // Level extents never grow back.
        assert!(stats
            .scan
            .extents
            .windows(2)
            .all(|w| w[1].items <= w[0].items));
    }

    #[test]
    fn parallel_counting_identical_results() {
        let d = db();
        let mut s1 = WorkStats::new();
        let mut s2 = WorkStats::new();
        let seq = apriori(&d, &AprioriConfig::new(1), &mut s1);
        let par = apriori(
            &d,
            &AprioriConfig::new(1).with_counting_threads(0),
            &mut s2,
        );
        let a: Vec<(Itemset, u64)> = seq.iter().map(|(s, n)| (s.clone(), n)).collect();
        let b: Vec<(Itemset, u64)> = par.iter().map(|(s, n)| (s.clone(), n)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn all_backends_identical_lattices() {
        let d = db();
        for min_support in 1..=4u64 {
            let mut reference: Option<Vec<(Itemset, u64)>> = None;
            for b in CountingBackend::all() {
                let mut stats = WorkStats::new();
                let fs =
                    apriori(&d, &AprioriConfig::new(min_support).with_backend(b), &mut stats);
                let got: Vec<(Itemset, u64)> = fs.iter().map(|(s, n)| (s.clone(), n)).collect();
                match &reference {
                    None => reference = Some(got),
                    Some(r) => assert_eq!(r, &got, "{b} min_support={min_support}"),
                }
            }
        }
    }

    #[test]
    fn vertical_backends_scan_once() {
        let d = db();
        for b in [CountingBackend::Tidset, CountingBackend::Bitmap] {
            let mut stats = WorkStats::new();
            let fs = apriori(&d, &AprioriConfig::new(1).with_backend(b), &mut stats);
            assert!(fs.total() > 0);
            // The index inversion pass is the run's only database read.
            assert_eq!(stats.db_scans, 1, "{b}");
            assert_eq!(stats.scan.extents.len(), 1, "{b}");
        }
    }

    #[test]
    fn sharded_lattices_and_accounting_match_unsharded() {
        let d = db();
        for backend in CountingBackend::all() {
            for min_support in 1..=3u64 {
                let mut s_ref = WorkStats::new();
                let reference = apriori(
                    &d,
                    &AprioriConfig::new(min_support).with_backend(backend),
                    &mut s_ref,
                );
                let r: Vec<(Itemset, u64)> =
                    reference.iter().map(|(s, n)| (s.clone(), n)).collect();
                for shards in [2usize, 3, 4, 16] {
                    let mut s = WorkStats::new();
                    let fs = apriori(
                        &d,
                        &AprioriConfig::new(min_support)
                            .with_backend(backend)
                            .with_shards(shards),
                        &mut s,
                    );
                    let got: Vec<(Itemset, u64)> =
                        fs.iter().map(|(s, n)| (s.clone(), n)).collect();
                    assert_eq!(got, r, "{backend} shards={shards} s={min_support}");
                    // Work accounting is shard-transparent.
                    assert_eq!(s.db_scans, s_ref.db_scans, "{backend} shards={shards}");
                    assert_eq!(s.support_counted, s_ref.support_counted);
                    assert_eq!(s.scan.rows_scanned, s_ref.scan.rows_scanned);
                    assert_eq!(s.scan.items_scanned, s_ref.scan.items_scanned);
                    assert_eq!(s.scan.trim_rows_dropped, s_ref.scan.trim_rows_dropped);
                    assert_eq!(s.scan.trim_items_dropped, s_ref.scan.trim_items_dropped);
                    assert_eq!(s.backends_used, s_ref.backends_used);
                }
            }
        }
    }

    #[test]
    fn empty_result_when_threshold_exceeds_db() {
        let d = db();
        let mut stats = WorkStats::new();
        let fs = apriori(&d, &AprioriConfig::new(100), &mut stats);
        assert_eq!(fs.total(), 0);
        assert_eq!(fs.n_levels(), 0);
    }
}

//! Plain Apriori over a restricted item universe.

use crate::candidates::generate_candidates;
use crate::counter::{SupportCounter, TrieCounter};
use crate::frequent::FrequentSets;
use crate::stats::WorkStats;
use cfq_types::{ItemId, Itemset, TransactionDb};

/// Configuration of an Apriori run.
#[derive(Clone, Debug)]
pub struct AprioriConfig {
    /// Items the lattice ranges over (the variable's domain). Must be
    /// ascending. Empty means "all items of the database".
    pub universe: Vec<ItemId>,
    /// Absolute minimum support.
    pub min_support: u64,
    /// Hard level cap; 0 = unbounded.
    pub max_level: usize,
}

impl AprioriConfig {
    /// All items, given threshold, no level cap.
    pub fn new(min_support: u64) -> Self {
        AprioriConfig { universe: Vec::new(), min_support, max_level: 0 }
    }

    /// Restricts the universe.
    pub fn with_universe(mut self, universe: Vec<ItemId>) -> Self {
        debug_assert!(universe.windows(2).all(|w| w[0] < w[1]));
        self.universe = universe;
        self
    }

    /// Caps the level.
    pub fn with_max_level(mut self, max_level: usize) -> Self {
        self.max_level = max_level;
        self
    }
}

/// Runs levelwise Apriori, recording work in `stats`.
///
/// This is the frequency backbone of both the Apriori⁺ baseline and (with
/// its pruning hooks, in `cfq-core`) the CAP algorithm.
pub fn apriori(db: &TransactionDb, cfg: &AprioriConfig, stats: &mut WorkStats) -> FrequentSets {
    let universe: Vec<ItemId> = if cfg.universe.is_empty() {
        (0..db.n_items() as u32).map(ItemId).collect()
    } else {
        cfg.universe.clone()
    };

    let mut result = FrequentSets::new();
    let counter = TrieCounter;

    // Level 1.
    let candidates: Vec<Itemset> =
        universe.iter().map(|&i| Itemset::singleton(i)).collect();
    let counts = counter.count(db, &candidates);
    stats.record_scan();
    let mut frequent: Vec<(Itemset, u64)> = candidates
        .into_iter()
        .zip(counts)
        .filter(|&(_, n)| n >= cfg.min_support)
        .collect();
    stats.record_level(1, universe.len() as u64, frequent.len() as u64);

    let mut level = 1usize;
    while !frequent.is_empty() {
        let sets: Vec<Itemset> = frequent.iter().map(|(s, _)| s.clone()).collect();
        result.push_level(std::mem::take(&mut frequent));
        if cfg.max_level != 0 && level >= cfg.max_level {
            break;
        }
        let candidates = generate_candidates(&sets, |_| true);
        if candidates.is_empty() {
            break;
        }
        let n_candidates = candidates.len() as u64;
        let counts = counter.count(db, &candidates);
        stats.record_scan();
        level += 1;
        frequent = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, n)| n >= cfg.min_support)
            .collect();
        stats.record_level(level, n_candidates, frequent.len() as u64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // Classic tiny example.
        TransactionDb::from_u32(
            5,
            &[
                &[0, 1, 2],
                &[0, 1, 2, 3],
                &[0, 2],
                &[1, 2, 3],
                &[0, 1, 3],
                &[2, 3, 4],
            ],
        )
    }

    /// Brute-force frequent sets for cross-checking.
    fn brute(db: &TransactionDb, universe: &[ItemId], min_support: u64) -> Vec<(Itemset, u64)> {
        let all: Itemset = universe.iter().copied().collect();
        let mut out = Vec::new();
        for sub in all.all_nonempty_subsets() {
            let sup = db.support(&sub);
            if sup >= min_support {
                out.push((sub, sup));
            }
        }
        out.sort_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
        out
    }

    #[test]
    fn matches_brute_force() {
        let d = db();
        for min_support in 1..=4u64 {
            let mut stats = WorkStats::new();
            let fs = apriori(&d, &AprioriConfig::new(min_support), &mut stats);
            let expected = brute(&d, &(0..5).map(ItemId).collect::<Vec<_>>(), min_support);
            let got: Vec<(Itemset, u64)> =
                fs.iter().map(|(s, n)| (s.clone(), n)).collect();
            assert_eq!(got, expected, "min_support={min_support}");
        }
    }

    #[test]
    fn respects_universe_restriction() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = AprioriConfig::new(1).with_universe(vec![ItemId(0), ItemId(2)]);
        let fs = apriori(&d, &cfg, &mut stats);
        for (s, _) in fs.iter() {
            for i in s.iter() {
                assert!(i == ItemId(0) || i == ItemId(2));
            }
        }
        assert!(fs.contains(&[0u32, 2].into()));
        assert!(!fs.contains(&[1u32].into()));
    }

    #[test]
    fn respects_max_level() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = AprioriConfig::new(1).with_max_level(2);
        let fs = apriori(&d, &cfg, &mut stats);
        assert_eq!(fs.n_levels(), 2);
    }

    #[test]
    fn counts_scans_per_level() {
        let d = db();
        let mut stats = WorkStats::new();
        let fs = apriori(&d, &AprioriConfig::new(2), &mut stats);
        // One scan per counted level.
        assert_eq!(stats.db_scans as usize, stats.levels.len());
        assert!(fs.total() > 0);
    }

    #[test]
    fn empty_result_when_threshold_exceeds_db() {
        let d = db();
        let mut stats = WorkStats::new();
        let fs = apriori(&d, &AprioriConfig::new(100), &mut stats);
        assert_eq!(fs.total(), 0);
        assert_eq!(fs.n_levels(), 0);
    }
}

#![warn(missing_docs)]

//! # cfq-mining
//!
//! The levelwise frequent-set mining substrate that the paper's algorithms
//! (Apriori⁺, CAP, the 2-var optimizer pipeline) are built on:
//!
//! * [`counter`] — support counting: a candidate prefix-trie counter (one
//!   database scan per level) and a naive reference counter; [`hashtree`]
//!   adds the classic Apriori hash tree, [`vertical`] an Eclat-style
//!   tidset counter and [`bitmap`] a u64 tid-bitmap counter (AND +
//!   popcount, diffsets at deep levels). All agree (property-tested).
//! * [`backend`] — the [`backend::CountingBackend`] axis
//!   (`horizontal | tidset | bitmap | auto`) every executor threads
//!   through, with `auto`'s per-level density crossover.
//! * [`candidates`] — the Apriori candidate generation (prefix join +
//!   subset prune) with a pluggable *validity oracle*, so CAP can restrict
//!   the prune to subsets that are themselves valid (required for succinct
//!   non-anti-monotone constraints, where invalid subsets are never
//!   counted).
//! * [`frequent`] — the levelled collection of frequent sets with support
//!   lookup and the `L_k` element summaries (`L1^S`, `L1^T`, `L_k^T.B` …)
//!   that quasi-succinct reduction and `J^k_max` pruning consume.
//! * [`apriori`](mod@apriori) — plain Apriori over a restricted item universe.
//! * [`partition`] — the two-scan Partition algorithm (Savasere et al.,
//!   VLDB 1995) and [`fpgrowth`] — FP-Growth (Han et al., SIGMOD 2000) —
//!   as alternative frequency backbones, both result-equivalent to Apriori.
//! * [`incremental`] — FUP-style maintenance of frequent sets under
//!   insertions (Cheung et al., ICDE 1996; the paper's citation \[6\]).
//! * [`shard`] — horizontally sharded counting: split the CSR store into
//!   P row ranges, count (and trim) each independently, merge per-level
//!   at a barrier; bit-identical to unsharded by support additivity.
//! * [`stats`] — work accounting: database scans, sets counted for support,
//!   constraint-check invocations; the raw material for the paper's
//!   ccc-optimality (Definition 6) and for the §7 tables. [`stats::ScanStats`]
//!   additionally tracks scan *volume* (rows/items touched per scan).
//! * [`trim`] — AprioriTid-style per-level database reduction: between
//!   levels, items outside the next candidates and rows too short to
//!   contain one are dropped, with row provenance kept for FUP.

pub mod apriori;
pub mod backend;
pub mod bitmap;
pub mod candidates;
pub mod counter;
pub mod fpgrowth;
pub mod frequent;
pub mod hashtree;
pub mod incremental;
pub mod partition;
pub mod shard;
pub mod stats;
pub mod trim;
pub mod vertical;

pub use apriori::{apriori, AprioriConfig};
pub use backend::{CountingBackend, CountingRun, ResolvedBackend};
pub use bitmap::{BitmapCounter, BitmapIndex};
pub use candidates::generate_candidates;
pub use counter::{
    count_supports, count_supports_with, NaiveCounter, ParallelTrieCounter, SupportCounter,
    TrieCounter,
};
pub use hashtree::HashTreeCounter;
pub use incremental::{fup_update, fup_update_abs, UpdateOutcome};
pub use partition::{partition_mine, PartitionConfig};
pub use shard::ShardedRun;
pub use vertical::{TidsetIndex, VerticalCounter};
pub use fpgrowth::{fp_growth, FpGrowthConfig};
pub use frequent::FrequentSets;
pub use stats::{LevelStats, ScanExtent, ScanStats, WorkStats};
pub use trim::{trim_db, trim_db_recorded, LiveSet, TrimResult};

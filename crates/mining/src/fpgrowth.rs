//! FP-Growth (Han, Pei & Yin, SIGMOD 2000): frequent-set mining without
//! candidate generation.
//!
//! Included as the post-Apriori frequency backbone a production release of
//! this system would ship: two database scans build a compressed prefix
//! tree (FP-tree) ordered by descending item frequency, and frequent sets
//! are mined by recursive conditional-tree projection. Results are
//! identical to Apriori's (property-tested); the constrained machinery in
//! `cfq-core` stays levelwise (CAP's pruning hooks need levels), but
//! unconstrained sub-problems — e.g. the Apriori⁺ baseline's raw frequency
//! phase or downstream analyses — can use this instead.

use crate::backend::CountingBackend;
use crate::bitmap::BitmapIndex;
use crate::frequent::FrequentSets;
use crate::stats::WorkStats;
use crate::vertical::TidsetIndex;
use cfq_types::{FxHashMap, ItemId, Itemset, TransactionDb};

/// Configuration for an FP-Growth run.
#[derive(Clone, Debug)]
pub struct FpGrowthConfig {
    /// Item universe (empty = all items).
    pub universe: Vec<ItemId>,
    /// Absolute minimum support.
    pub min_support: u64,
    /// Maximum itemset size to report (0 = unbounded).
    pub max_len: usize,
    /// How scan 1 computes the f-list frequencies: `Horizontal` tallies
    /// rows directly; a vertical backend takes them off a one-pass
    /// inverted index. Either way it is one scan — the tree build (scan
    /// 2) and the recursive mining are backend-independent.
    pub backend: CountingBackend,
}

impl FpGrowthConfig {
    /// All items, given threshold, unbounded length.
    pub fn new(min_support: u64) -> Self {
        FpGrowthConfig {
            universe: Vec::new(),
            min_support,
            max_len: 0,
            backend: CountingBackend::Horizontal,
        }
    }

    /// Selects the scan-1 frequency backend.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }
}

const NONE: u32 = u32::MAX;

/// An FP-tree over *ranked* items (0 = most frequent). Nodes live in an
/// arena; each header entry chains the nodes of one rank.
struct FpTree {
    /// (rank, count, parent) per node; node 0 is the root sentinel.
    items: Vec<u32>,
    counts: Vec<u64>,
    parents: Vec<u32>,
    next: Vec<u32>,
    /// Head of the node chain per rank.
    headers: Vec<u32>,
    /// Total count per rank in this tree.
    rank_totals: Vec<u64>,
    /// Child lookup: (parent node, rank) → node.
    children: FxHashMap<(u32, u32), u32>,
}

impl FpTree {
    fn new(n_ranks: usize) -> FpTree {
        FpTree {
            items: vec![NONE],
            counts: vec![0],
            parents: vec![NONE],
            next: vec![NONE],
            headers: vec![NONE; n_ranks],
            rank_totals: vec![0; n_ranks],
            children: FxHashMap::default(),
        }
    }

    /// Inserts a rank-sorted path with a weight.
    fn insert(&mut self, path: &[u32], weight: u64) {
        let mut node = 0u32;
        for &rank in path {
            let key = (node, rank);
            let child = match self.children.get(&key) {
                Some(&c) => c,
                None => {
                    let c = self.items.len() as u32;
                    self.items.push(rank);
                    self.counts.push(0);
                    self.parents.push(node);
                    self.next.push(self.headers[rank as usize]);
                    self.headers[rank as usize] = c;
                    self.children.insert(key, c);
                    c
                }
            };
            self.counts[child as usize] += weight;
            self.rank_totals[rank as usize] += weight;
            node = child;
        }
    }

    /// The conditional pattern base of a rank: (prefix path of ranks,
    /// count) per node in its chain.
    fn pattern_base(&self, rank: u32) -> Vec<(Vec<u32>, u64)> {
        let mut out = Vec::new();
        let mut node = self.headers[rank as usize];
        while node != NONE {
            let count = self.counts[node as usize];
            let mut path = Vec::new();
            let mut p = self.parents[node as usize];
            while p != NONE && p != 0 {
                path.push(self.items[p as usize]);
                p = self.parents[p as usize];
            }
            path.reverse();
            if !path.is_empty() {
                out.push((path, count));
            }
            node = self.next[node as usize];
        }
        out
    }
}

/// Runs FP-Growth. The result equals plain Apriori's on the same universe
/// and threshold. Records exactly two database scans in `stats`.
pub fn fp_growth(db: &TransactionDb, cfg: &FpGrowthConfig, stats: &mut WorkStats) -> FrequentSets {
    let universe: Vec<ItemId> = if cfg.universe.is_empty() {
        (0..db.n_items() as u32).map(ItemId).collect()
    } else {
        cfg.universe.clone()
    };
    let in_universe = {
        let mut mask = vec![false; db.n_items()];
        for &i in &universe {
            mask[i.index()] = true;
        }
        mask
    };

    // Scan 1: item frequencies.
    let mut freq = vec![0u64; db.n_items()];
    match cfg.backend {
        CountingBackend::Horizontal => {
            for t in db.iter() {
                for &i in t {
                    if in_universe[i.index()] {
                        freq[i.index()] += 1;
                    }
                }
            }
        }
        CountingBackend::Tidset => {
            let idx = TidsetIndex::build(db);
            for &i in &universe {
                freq[i.index()] = idx.item_tids(i).len() as u64;
            }
        }
        CountingBackend::Bitmap | CountingBackend::Auto => {
            let idx = BitmapIndex::build(db);
            for &i in &universe {
                freq[i.index()] = idx.item_support(i);
            }
        }
    }
    stats.record_scan();

    // The f-list: frequent items by descending frequency (ties by id).
    let mut flist: Vec<ItemId> = universe
        .iter()
        .copied()
        .filter(|i| freq[i.index()] >= cfg.min_support)
        .collect();
    flist.sort_by(|a, b| freq[b.index()].cmp(&freq[a.index()]).then(a.cmp(b)));
    let mut rank_of = vec![NONE; db.n_items()];
    for (r, &i) in flist.iter().enumerate() {
        rank_of[i.index()] = r as u32;
    }

    // Scan 2: build the global FP-tree.
    let mut tree = FpTree::new(flist.len());
    let mut path = Vec::new();
    for t in db.iter() {
        path.clear();
        path.extend(t.iter().filter_map(|&i| {
            let r = rank_of[i.index()];
            (r != NONE).then_some(r)
        }));
        path.sort_unstable();
        if !path.is_empty() {
            tree.insert(&path, 1);
        }
    }
    stats.record_scan();

    // Mine recursively; collect (ranks-suffix, support).
    let mut found: Vec<(Vec<u32>, u64)> = Vec::new();
    let mut suffix: Vec<u32> = Vec::new();
    mine(&tree, cfg, &mut suffix, &mut found);

    // Convert rank-space results to itemsets, grouped by level.
    let mut by_level: Vec<Vec<(Itemset, u64)>> = Vec::new();
    for (ranks, support) in found {
        let set = Itemset::from_items(ranks.iter().map(|&r| flist[r as usize]));
        let lvl = set.len();
        if by_level.len() < lvl {
            by_level.resize(lvl, Vec::new());
        }
        by_level[lvl - 1].push((set, support));
    }
    let mut out = FrequentSets::new();
    for (idx, mut level) in by_level.into_iter().enumerate() {
        level.sort_by(|a, b| a.0.cmp(&b.0));
        stats.record_level(idx + 1, level.len() as u64, level.len() as u64);
        out.push_level(level);
    }
    out
}

fn mine(tree: &FpTree, cfg: &FpGrowthConfig, suffix: &mut Vec<u32>, out: &mut Vec<(Vec<u32>, u64)>) {
    if cfg.max_len != 0 && suffix.len() >= cfg.max_len {
        return;
    }
    // Process ranks from least to most frequent (bottom of the f-list up).
    for rank in (0..tree.headers.len() as u32).rev() {
        let support = tree.rank_totals[rank as usize];
        if support < cfg.min_support {
            continue;
        }
        suffix.push(rank);
        out.push((suffix.clone(), support));

        if cfg.max_len == 0 || suffix.len() < cfg.max_len {
            // Conditional tree over the prefix paths of this rank.
            let base = tree.pattern_base(rank);
            if !base.is_empty() {
                let mut cond = FpTree::new(rank as usize); // ranks < rank only
                for (path, count) in &base {
                    // Paths contain only ranks < rank by construction.
                    cond.insert(path, *count);
                }
                mine(&cond, cfg, suffix, out);
            }
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
        fs.iter().map(|(s, n)| (s.clone(), n)).collect()
    }

    #[test]
    fn matches_apriori_on_fixed_db() {
        let d = db();
        for min_support in 1..=4u64 {
            let mut s1 = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut s1);
            let mut s2 = WorkStats::new();
            let got = fp_growth(&d, &FpGrowthConfig::new(min_support), &mut s2);
            assert_eq!(collect(&got), collect(&expected), "min_support={min_support}");
            assert_eq!(s2.db_scans, 2);
        }
    }

    #[test]
    fn randomized_agreement_with_apriori() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..25 {
            let n_items = rng.gen_range(3..10);
            let txs: Vec<Vec<ItemId>> = (0..rng.gen_range(1..40))
                .map(|_| {
                    (0..rng.gen_range(1..=n_items))
                        .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                        .collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let min_support = rng.gen_range(1..5);
            let mut s1 = WorkStats::new();
            let expected = apriori(&d, &AprioriConfig::new(min_support), &mut s1);
            let mut s2 = WorkStats::new();
            let got = fp_growth(&d, &FpGrowthConfig::new(min_support), &mut s2);
            assert_eq!(collect(&got), collect(&expected), "trial {trial}");
        }
    }

    #[test]
    fn universe_restriction() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = FpGrowthConfig {
            universe: vec![ItemId(1), ItemId(2), ItemId(3)],
            ..FpGrowthConfig::new(2)
        };
        let got = fp_growth(&d, &cfg, &mut stats);
        for (s, _) in got.iter() {
            assert!(s.iter().all(|i| (1..=3).contains(&i.0)));
        }
        let mut s1 = WorkStats::new();
        let expected = apriori(
            &d,
            &AprioriConfig::new(2).with_universe(vec![ItemId(1), ItemId(2), ItemId(3)]),
            &mut s1,
        );
        assert_eq!(collect(&got), collect(&expected));
    }

    #[test]
    fn max_len_caps_output() {
        let d = db();
        let mut stats = WorkStats::new();
        let cfg = FpGrowthConfig { max_len: 2, ..FpGrowthConfig::new(1) };
        let got = fp_growth(&d, &cfg, &mut stats);
        assert!(got.iter().all(|(s, _)| s.len() <= 2));
        assert_eq!(got.n_levels(), 2);
    }

    #[test]
    fn scan1_backends_agree() {
        let d = db();
        let mut s1 = WorkStats::new();
        let expected = fp_growth(&d, &FpGrowthConfig::new(2), &mut s1);
        for b in CountingBackend::all() {
            let mut s2 = WorkStats::new();
            let got = fp_growth(&d, &FpGrowthConfig::new(2).with_backend(b), &mut s2);
            assert_eq!(collect(&got), collect(&expected), "{b}");
            assert_eq!(s2.db_scans, 2, "{b}: still exactly two scans");
        }
    }

    #[test]
    fn empty_and_infrequent() {
        let d = TransactionDb::new(4, Vec::new()).unwrap();
        let mut stats = WorkStats::new();
        assert_eq!(fp_growth(&d, &FpGrowthConfig::new(1), &mut stats).total(), 0);
        let d = db();
        let mut stats = WorkStats::new();
        assert_eq!(fp_growth(&d, &FpGrowthConfig::new(100), &mut stats).total(), 0);
    }

    #[test]
    fn quest_data_equivalence() {
        let quest = cfq_datagen_stub();
        let mut s1 = WorkStats::new();
        let expected = apriori(&quest, &AprioriConfig::new(8), &mut s1);
        let mut s2 = WorkStats::new();
        let got = fp_growth(&quest, &FpGrowthConfig::new(8), &mut s2);
        assert_eq!(collect(&got), collect(&expected));
        assert!(got.total() > 50, "workload too trivial: {}", got.total());
    }

    /// A deterministic pseudo-Quest database without the datagen dependency
    /// (mining is below datagen in the crate graph).
    fn cfq_datagen_stub() -> TransactionDb {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let patterns: Vec<Vec<u32>> = (0..12)
            .map(|_| (0..rng.gen_range(2..5)).map(|_| rng.gen_range(0..40)).collect())
            .collect();
        let txs: Vec<Vec<ItemId>> = (0..400)
            .map(|_| {
                let mut t: Vec<ItemId> = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    let p = &patterns[rng.gen_range(0..patterns.len())];
                    t.extend(p.iter().map(|&i| ItemId(i)));
                }
                t
            })
            .collect();
        TransactionDb::new(40, txs).unwrap()
    }
}

//! Support counting.
//!
//! [`TrieCounter`] is the production counter: candidates are loaded into a
//! prefix trie and each transaction is streamed through it once, so a level
//! costs one database scan regardless of candidate count. [`NaiveCounter`]
//! is the obviously-correct reference used by tests and tiny instances.

use cfq_types::transaction::contains_sorted;
use cfq_types::{DbChunk, ItemId, Itemset, TransactionDb};

/// A strategy for counting the supports of a candidate batch in one pass.
pub trait SupportCounter {
    /// Returns the absolute support of each candidate, in input order.
    /// Implementations must make exactly one pass over `db`.
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64>;
}

/// Reference counter: per transaction, test each candidate by sorted-slice
/// inclusion. `O(|D| × |C| × |t|)` — correct and slow.
#[derive(Default, Clone, Copy, Debug)]
pub struct NaiveCounter;

impl SupportCounter for NaiveCounter {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        let mut counts = vec![0u64; candidates.len()];
        for t in db.iter() {
            for (ci, c) in candidates.iter().enumerate() {
                if contains_sorted(t, c.as_slice()) {
                    counts[ci] += 1;
                }
            }
        }
        counts
    }
}

/// Prefix-trie counter (the hash-tree of Apriori in trie form).
///
/// The trie is rebuilt per call: construction is `O(Σ|c|)` over sorted
/// candidates, and counting walks each transaction against the trie,
/// visiting a node only when its prefix is contained in the transaction.
#[derive(Default, Clone, Copy, Debug)]
pub struct TrieCounter;

struct Trie {
    nodes: Vec<TrieNode>,
}

struct TrieNode {
    item: ItemId,
    /// Index range of children in `nodes` (children are contiguous and
    /// sorted by item because candidates arrive lexicographically sorted).
    children: std::ops::Range<u32>,
    /// Candidate index if a candidate ends at this node.
    candidate: Option<u32>,
}

impl Trie {
    /// Builds the trie from lexicographically sorted, distinct candidates of
    /// uniform positive length.
    fn build(candidates: &[Itemset]) -> Trie {
        let mut trie = Trie { nodes: Vec::new() };
        if candidates.is_empty() {
            return trie;
        }
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "candidates must be sorted");
        // Breadth-first construction so each node's children are contiguous.
        // Frontier entries: (candidate range, depth, node index or root).
        struct Frame {
            lo: usize,
            hi: usize,
            depth: usize,
            node: Option<usize>,
        }
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(Frame { lo: 0, hi: candidates.len(), depth: 0, node: None });
        while let Some(f) = queue.pop_front() {
            let child_start = trie.nodes.len() as u32;
            let mut i = f.lo;
            while i < f.hi {
                let c = &candidates[i];
                debug_assert!(
                    c.len() > f.depth,
                    "candidate ending at this depth was consumed by its parent frame"
                );
                let item = c.as_slice()[f.depth];
                let mut j = i + 1;
                while j < f.hi && candidates[j].len() > f.depth
                    && candidates[j].as_slice()[f.depth] == item
                {
                    j += 1;
                }
                let ends_here = candidates[i].len() == f.depth + 1;
                let candidate = if ends_here { Some(i as u32) } else { None };
                trie.nodes.push(TrieNode { item, children: 0..0, candidate });
                let node_idx = trie.nodes.len() - 1;
                let lo = if ends_here { i + 1 } else { i };
                if lo < j {
                    queue.push_back(Frame { lo, hi: j, depth: f.depth + 1, node: Some(node_idx) });
                }
                i = j;
            }
            let child_end = trie.nodes.len() as u32;
            match f.node {
                Some(n) => trie.nodes[n].children = child_start..child_end,
                None => {
                    // Root children occupy the prefix of `nodes`; remember
                    // by convention: they are nodes[0..child_end] from the
                    // first frame. Store in a sentinel handled by count().
                }
            }
        }
        trie
    }

    /// Number of root children: the first frame's nodes are emitted first
    /// and contiguously, so they span `0..n_roots`.
    fn n_roots(&self, candidates: &[Itemset]) -> u32 {
        if candidates.is_empty() {
            return 0;
        }
        let mut n = 0u32;
        let mut last: Option<ItemId> = None;
        for c in candidates {
            let first = c.as_slice()[0];
            if last != Some(first) {
                n += 1;
                last = Some(first);
            }
        }
        n
    }

    fn count_transaction(
        &self,
        roots: std::ops::Range<u32>,
        t: &[ItemId],
        counts: &mut [u64],
    ) {
        self.walk(roots, t, counts);
    }

    fn walk(&self, children: std::ops::Range<u32>, t: &[ItemId], counts: &mut [u64]) {
        if children.is_empty() || t.is_empty() {
            return;
        }
        let (mut ci, mut ti) = (children.start as usize, 0usize);
        let end = children.end as usize;
        while ci < end && ti < t.len() {
            let node = &self.nodes[ci];
            match node.item.cmp(&t[ti]) {
                std::cmp::Ordering::Less => ci += 1,
                std::cmp::Ordering::Greater => ti += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(cand) = node.candidate {
                        counts[cand as usize] += 1;
                    }
                    let rest = &t[ti + 1..];
                    if !node.children.is_empty() && !rest.is_empty() {
                        self.walk(node.children.clone(), rest, counts);
                    }
                    ci += 1;
                    ti += 1;
                }
            }
        }
    }
}

impl SupportCounter for TrieCounter {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        let mut counts = vec![0u64; candidates.len()];
        if candidates.is_empty() {
            return counts;
        }
        // The trie builder requires sorted input; sort indices if needed.
        let sorted = candidates.windows(2).all(|w| w[0] < w[1]);
        if sorted {
            let trie = Trie::build(candidates);
            let roots = 0..trie.n_roots(candidates);
            for t in db.iter() {
                trie.count_transaction(roots.clone(), t, &mut counts);
            }
            counts
        } else {
            let mut order: Vec<u32> = (0..candidates.len() as u32).collect();
            order.sort_by(|&a, &b| candidates[a as usize].cmp(&candidates[b as usize]));
            order.dedup_by(|a, b| candidates[*a as usize] == candidates[*b as usize]);
            let sorted_c: Vec<Itemset> =
                order.iter().map(|&i| candidates[i as usize].clone()).collect();
            let inner = self.count(db, &sorted_c);
            // Scatter back (duplicates get recounted via a map).
            let mut by_set: std::collections::HashMap<&Itemset, u64> =
                std::collections::HashMap::with_capacity(sorted_c.len());
            for (c, n) in sorted_c.iter().zip(inner.iter()) {
                by_set.insert(c, *n);
            }
            for (i, c) in candidates.iter().enumerate() {
                counts[i] = by_set[c];
            }
            counts
        }
    }
}

/// Counts several independent candidate batches in a *single* database scan
/// (the scan-sharing primitive behind the paper's dovetailing argument,
/// §5.2). Returns per-batch support vectors.
pub fn count_supports(db: &TransactionDb, batches: &[&[Itemset]]) -> Vec<Vec<u64>> {
    count_supports_with(db, batches, 1)
}

/// [`count_supports`] with `threads` workers sharding the transactions
/// (still one logical scan). `threads == 0` uses all available cores.
pub fn count_supports_with(
    db: &TransactionDb,
    batches: &[&[Itemset]],
    threads: usize,
) -> Vec<Vec<u64>> {
    let tries: Vec<(Trie, std::ops::Range<u32>, usize)> = batches
        .iter()
        .map(|b| {
            debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
            let trie = Trie::build(b);
            let roots = 0..trie.n_roots(b);
            (trie, roots, b.len())
        })
        .collect();
    let threads = resolve_threads(threads);
    let count_chunk = |chunk: DbChunk<'_>| -> Vec<Vec<u64>> {
        let mut counts: Vec<Vec<u64>> =
            tries.iter().map(|(_, _, n)| vec![0u64; *n]).collect();
        for t in chunk.iter() {
            for (bi, (trie, roots, _)) in tries.iter().enumerate() {
                trie.count_transaction(roots.clone(), t, &mut counts[bi]);
            }
        }
        counts
    };
    if threads <= 1 || db.len() < 4 * threads {
        return match db.chunks(1).pop() {
            Some(whole) => count_chunk(whole),
            None => tries.iter().map(|(_, _, n)| vec![0u64; *n]).collect(),
        };
    }
    // Shard by CSR chunks: each worker gets an offset-sliced view balanced
    // by item count — no row indirection or cloning on the hot path.
    let partials: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = db
            .chunks(threads)
            .into_iter()
            .map(|chunk| {
                let count_chunk = &count_chunk;
                scope.spawn(move || count_chunk(chunk))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut counts: Vec<Vec<u64>> = tries.iter().map(|(_, _, n)| vec![0u64; *n]).collect();
    for p in partials {
        for (bi, batch) in p.into_iter().enumerate() {
            for (acc, x) in counts[bi].iter_mut().zip(batch) {
                *acc += x;
            }
        }
    }
    counts
}

/// Resolves a thread-count knob: `0` means one worker per available core.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[1, 2, 3],
                &[0, 2, 4],
                &[1, 2],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4, 5],
            ],
        )
    }

    fn sets(v: &[&[u32]]) -> Vec<Itemset> {
        v.iter().map(|s| s.iter().copied().collect()).collect()
    }

    #[test]
    fn trie_matches_naive_on_fixed_case() {
        let d = db();
        let cands = sets(&[&[0, 1], &[0, 2], &[1, 2], &[2, 3], &[3, 4], &[4, 5]]);
        let naive = NaiveCounter.count(&d, &cands);
        let trie = TrieCounter.count(&d, &cands);
        assert_eq!(naive, trie);
        assert_eq!(naive, vec![2, 3, 4, 4, 2, 2]);
    }

    #[test]
    fn singleton_level() {
        let d = db();
        let cands = sets(&[&[0], &[1], &[2], &[5]]);
        assert_eq!(TrieCounter.count(&d, &cands), vec![3, 4, 6, 2]);
    }

    #[test]
    fn empty_candidates() {
        let d = db();
        assert!(TrieCounter.count(&d, &[]).is_empty());
        assert!(NaiveCounter.count(&d, &[]).is_empty());
    }

    #[test]
    fn deep_candidates() {
        let d = db();
        let cands = sets(&[&[0, 1, 2, 3], &[1, 2, 3], &[2, 3, 4], &[0, 1, 2, 3, 4, 5]]);
        // Mixed lengths exercised one batch at a time (engine always counts
        // uniform levels, but the counter tolerates mixtures).
        for c in &cands {
            let single = vec![c.clone()];
            assert_eq!(
                TrieCounter.count(&d, &single)[0],
                d.support(c),
                "support mismatch for {c}"
            );
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let d = db();
        let cands = sets(&[&[2, 3], &[0, 1], &[1, 2]]);
        let trie = TrieCounter.count(&d, &cands);
        let naive = NaiveCounter.count(&d, &cands);
        assert_eq!(trie, naive);
    }

    #[test]
    fn shared_scan_counts_match_individual() {
        let d = db();
        let a = sets(&[&[0, 1], &[1, 2]]);
        let b = sets(&[&[2], &[3], &[4]]);
        let shared = count_supports(&d, &[&a, &b]);
        assert_eq!(shared[0], TrieCounter.count(&d, &a));
        assert_eq!(shared[1], TrieCounter.count(&d, &b));
    }

    #[test]
    fn randomized_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n_items = rng.gen_range(4..12);
            let n_tx = rng.gen_range(1..40);
            let txs: Vec<Vec<cfq_types::ItemId>> = (0..n_tx)
                .map(|_| {
                    let len = rng.gen_range(1..=n_items);
                    (0..len).map(|_| cfq_types::ItemId(rng.gen_range(0..n_items as u32))).collect()
                })
                .collect();
            let d = TransactionDb::new(n_items, txs).unwrap();
            let k = rng.gen_range(1..4usize);
            let mut cands: Vec<Itemset> = (0..rng.gen_range(1..30))
                .map(|_| {
                    (0..k).map(|_| rng.gen_range(0..n_items as u32)).collect::<Itemset>()
                })
                .filter(|c: &Itemset| !c.is_empty())
                .collect();
            cands.sort();
            cands.dedup();
            let naive = NaiveCounter.count(&d, &cands);
            let trie = TrieCounter.count(&d, &cands);
            assert_eq!(naive, trie, "trial {trial} diverged");
        }
    }
}

/// Multi-threaded trie counter: the candidate trie is built once and shared
/// read-only; transactions are sharded across scoped threads, each counting
/// into a local vector, reduced at the end. Still one logical database
/// scan.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelTrieCounter {
    /// Worker thread count (0 = one per available core).
    pub threads: usize,
}

impl SupportCounter for ParallelTrieCounter {
    fn count(&self, db: &TransactionDb, candidates: &[Itemset]) -> Vec<u64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let threads = resolve_threads(self.threads);
        // Small inputs: the sequential counter wins.
        if threads <= 1 || db.len() < 4 * threads {
            return TrieCounter.count(db, candidates);
        }
        let sorted = candidates.windows(2).all(|w| w[0] < w[1]);
        if !sorted {
            // Fall back: the sequential path handles reordering.
            return TrieCounter.count(db, candidates);
        }
        let trie = Trie::build(candidates);
        let roots = 0..trie.n_roots(candidates);
        // Shard by CSR chunks (offset-sliced views, balanced by item count).
        let partials: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = db
                .chunks(threads)
                .into_iter()
                .map(|chunk| {
                    let trie = &trie;
                    let roots = roots.clone();
                    scope.spawn(move || {
                        let mut counts = vec![0u64; candidates.len()];
                        for t in chunk.iter() {
                            trie.count_transaction(roots.clone(), t, &mut counts);
                        }
                        counts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut counts = vec![0u64; candidates.len()];
        for p in partials {
            for (acc, x) in counts.iter_mut().zip(p) {
                *acc += x;
            }
        }
        counts
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n_items = 30usize;
        let txs: Vec<Vec<ItemId>> = (0..500)
            .map(|_| {
                (0..rng.gen_range(2..12))
                    .map(|_| ItemId(rng.gen_range(0..n_items as u32)))
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(n_items, txs).unwrap();
        let mut cands: Vec<Itemset> = (0..200)
            .map(|_| {
                (0..rng.gen_range(1..4))
                    .map(|_| rng.gen_range(0..n_items as u32))
                    .collect()
            })
            .collect();
        cands.sort();
        cands.dedup();
        for threads in [0usize, 1, 2, 5] {
            let par = ParallelTrieCounter { threads }.count(&db, &cands);
            let seq = TrieCounter.count(&db, &cands);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn tiny_database_falls_back() {
        let db = TransactionDb::from_u32(3, &[&[0, 1], &[1, 2]]);
        let cands: Vec<Itemset> = vec![[0u32].into(), [1u32].into(), [1u32, 2].into()];
        assert_eq!(
            ParallelTrieCounter::default().count(&db, &cands),
            vec![1, 2, 1]
        );
    }
}

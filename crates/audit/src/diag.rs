//! Structured diagnostics: severities, per-constraint findings with source
//! spans, and the [`AuditReport`] container with human and JSON renderings.

use std::fmt;

use cfq_constraints::Span;

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// The plan (or classifier) is unsound: executing it could return a
    /// wrong answer set. An audit with any error refuses execution.
    Error,
    /// The plan is sound but leaves sanctioned pruning on the table (e.g. a
    /// reduction marked looser than the paper's tables allow).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"misclassified"`,
    /// `"induced-weaker-missing-recheck"`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Byte span of the offending constraint in the query source, when the
    /// report was produced from source text.
    pub span: Option<Span>,
    /// Display form of the constraint the finding is about.
    pub constraint: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(c) = &self.constraint {
            write!(f, "\n  constraint: {c}")?;
        }
        if let Some(s) = &self.span {
            write!(f, "\n  at {s}")?;
        }
        Ok(())
    }
}

impl From<Diagnostic> for cfq_types::CfqError {
    /// Lossless conversion into the workspace's unified error type: the
    /// [`CfqError::Audit`](cfq_types::CfqError::Audit) payload is the
    /// diagnostic's full display form — severity, code, message, the
    /// offending constraint and its source span when known.
    fn from(d: Diagnostic) -> Self {
        cfq_types::CfqError::Audit(d.to_string())
    }
}

/// The outcome of auditing one plan (or one DNF disjunct's plan).
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings, in the order the obligations were checked.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Records a finding.
    pub fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        message: String,
        span: Option<Span>,
        constraint: Option<String>,
    ) {
        self.diagnostics.push(Diagnostic { severity, code, message, span, constraint });
    }

    /// Whether the plan may be executed: no error-severity findings.
    pub fn is_sound(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Appends another report's findings (used to fold DNF disjuncts).
    pub fn merge(&mut self, other: AuditReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Multi-line human rendering; ends with a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if errors == 0 {
            out.push_str(&format!("audit: plan is sound ({warnings} warning(s))\n"));
        } else {
            out.push_str(&format!(
                "audit: plan REJECTED ({errors} error(s), {warnings} warning(s))\n"
            ));
        }
        out
    }

    /// Machine-readable JSON object:
    /// `{"sound": bool, "errors": N, "warnings": N, "diagnostics": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"sound\": {}", self.is_sound()));
        out.push_str(&format!(", \"errors\": {}", self.errors().count()));
        out.push_str(&format!(", \"warnings\": {}", self.warnings().count()));
        out.push_str(", \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"severity\": \"{}\", \"code\": \"{}\", \"message\": \"{}\"",
                d.severity,
                json_escape(d.code),
                json_escape(&d.message)
            ));
            if let Some(s) = &d.span {
                out.push_str(&format!(", \"span\": [{}, {}]", s.start, s.end));
            }
            if let Some(c) = &d.constraint {
                out.push_str(&format!(", \"constraint\": \"{}\"", json_escape(c)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_converts_losslessly_into_cfq_error() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: "misclassified",
            message: "claims quasi-succinct".into(),
            span: Some(Span { start: 3, end: 9 }),
            constraint: Some("count(S) < count(T)".into()),
        };
        let err: cfq_types::CfqError = d.into();
        assert!(matches!(err, cfq_types::CfqError::Audit(_)), "{err}");
        let text = err.to_string();
        for needle in
            ["audit error:", "error[misclassified]", "claims quasi-succinct", "count(S) < count(T)", "3"]
        {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
    }

    #[test]
    fn report_verdicts_and_json() {
        let mut r = AuditReport::default();
        assert!(r.is_sound());
        assert!(r.render().contains("plan is sound"));
        r.push(Severity::Warning, "reduction-not-tight", "loose".into(), None, None);
        assert!(r.is_sound());
        r.push(
            Severity::Error,
            "misclassified",
            "said \"QS\"".into(),
            Some(Span { start: 3, end: 9 }),
            Some("count(S) < count(T)".into()),
        );
        assert!(!r.is_sound());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        let json = r.to_json();
        assert!(json.contains("\"sound\": false"));
        assert!(json.contains("\"span\": [3, 9]"));
        assert!(json.contains("said \\\"QS\\\""));
        assert!(r.render().contains("REJECTED (1 error(s)"));
        assert!(r.render().contains("bytes 3..9"));
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}

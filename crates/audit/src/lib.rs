//! `cfq-audit`: static soundness auditor for constraint classifications and
//! optimizer plans.
//!
//! The optimizer (`cfq-core`) rewrites a constrained frequent set query
//! into pruning conditions using the paper's tables: Figure 1 classifies
//! each constraint, Figures 2–3 reduce quasi-succinct 2-var constraints to
//! 1-var conditions over `L1`, Figure 4 induces weaker quasi-succinct
//! constraints from `sum`/`avg` shapes, and §5.2 attaches `J^k_max`
//! iterative bounds. Each rewrite carries a proof obligation; a bug in any
//! table silently corrupts the answer set.
//!
//! This crate discharges those obligations *statically* — from the
//! constraint ASTs, the catalog, and the optimizer's [`PlanTrace`], never
//! touching transaction data. [`crate::derive`] re-derives every table
//! from scratch (deliberately not calling `classify`/`reduce`/`induce`),
//! and the walker in `check` compares the production plan against the
//! derivation, emitting [`Diagnostic`]s with source spans. An
//! [`AuditReport`] with any error-severity finding marks the plan unsound;
//! the `cfq audit` CLI command and the `--audit` execution gate refuse to
//! run such a plan.

#![deny(missing_docs)]

pub mod derive;

mod check;
mod diag;

pub use diag::{json_escape, AuditReport, Diagnostic, Severity};

use cfq_constraints::{
    bind_constraint, classify_two, parse_dnf_spanned, parse_query_spanned, Bound, BoundQuery,
    Span, TwoVar, TwoVarClass,
};
use cfq_core::{Optimizer, PlanTrace};
use cfq_types::{Catalog, Result};

/// Byte spans of each bound constraint in the query source, parallel to
/// [`BoundQuery::one_var`] and [`BoundQuery::two_var`].
#[derive(Clone, Debug, Default)]
pub struct SpanMap {
    /// Span of each 1-var conjunct, in `one_var` order.
    pub one: Vec<Span>,
    /// Span of each 2-var conjunct, in `two_var` order.
    pub two: Vec<Span>,
}

/// The plan soundness auditor.
///
/// Holds the catalog the plans were built against, the optimizer
/// configuration to re-plan with, and the 2-var classifier under audit
/// (the production [`classify_two`] by default; tests inject deliberately
/// broken classifiers to prove the cross-check fires).
pub struct Auditor<'a> {
    catalog: &'a Catalog,
    optimizer: Optimizer,
    classify: Box<dyn Fn(&TwoVar) -> TwoVarClass + 'a>,
}

impl<'a> Auditor<'a> {
    /// An auditor for plans built against `catalog`, auditing the default
    /// (full Figure-7) optimizer and the production classifier.
    pub fn new(catalog: &'a Catalog) -> Self {
        Auditor { catalog, optimizer: Optimizer::default(), classify: Box::new(classify_two) }
    }

    /// Audits plans produced by `optimizer` instead of the default.
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Replaces the 2-var classifier that is cross-checked against the
    /// structural derivation. Used by tests to inject misclassifications.
    pub fn with_two_var_classifier(
        mut self,
        classify: impl Fn(&TwoVar) -> TwoVarClass + 'a,
    ) -> Self {
        self.classify = Box::new(classify);
        self
    }

    /// Audits an existing plan trace against the query it was planned
    /// from. `spans` (when the query came from source text) lets the
    /// diagnostics point at the offending constraint.
    pub fn audit_trace(
        &self,
        trace: &PlanTrace,
        query: &BoundQuery,
        spans: Option<&SpanMap>,
    ) -> AuditReport {
        let mut report = AuditReport::default();
        check::check_trace(trace, query, self.catalog, &*self.classify, spans, &mut report);
        report
    }

    /// Plans `query` with the configured optimizer and audits the result.
    pub fn audit_query(&self, query: &BoundQuery, spans: Option<&SpanMap>) -> AuditReport {
        let plan = self.optimizer.build_plan(query, self.catalog);
        self.audit_trace(plan.trace(), query, spans)
    }

    /// Parses, binds, plans, and audits a conjunctive query from source
    /// text; diagnostics carry byte spans into `src`.
    pub fn audit_source(&self, src: &str) -> Result<AuditReport> {
        let (ast, spans) = parse_query_spanned(src)?;
        let (query, map) = bind_spanned(&ast, &spans, self.catalog)?;
        Ok(self.audit_query(&query, Some(&map)))
    }

    /// Parses a DNF query and audits each disjunct's plan separately.
    pub fn audit_dnf(&self, src: &str) -> Result<Vec<AuditReport>> {
        let (dnf, spans) = parse_dnf_spanned(src)?;
        dnf.disjuncts
            .iter()
            .zip(&spans)
            .map(|(q, sp)| {
                let (query, map) = bind_spanned(q, sp, self.catalog)?;
                Ok(self.audit_query(&query, Some(&map)))
            })
            .collect()
    }
}

/// Binds a parsed conjunction constraint-by-constraint, keeping each bound
/// constraint's source span aligned with its slot in the [`BoundQuery`]
/// (mirrors `bind_query`'s push order).
fn bind_spanned(
    ast: &cfq_constraints::Query,
    spans: &[Span],
    catalog: &Catalog,
) -> Result<(BoundQuery, SpanMap)> {
    let mut query = BoundQuery::default();
    let mut map = SpanMap::default();
    for (c, span) in ast.constraints.iter().zip(spans) {
        match bind_constraint(c, catalog)? {
            Some(Bound::One(c)) => {
                query.one_var.push(c);
                map.one.push(*span);
            }
            Some(Bound::Two(c)) => {
                query.two_var.push(c);
                map.two.push(*span);
            }
            None => {} // freq(S)/freq(T): implicit
        }
    }
    Ok((query, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn audit_clean(src: &str) {
        let cat = catalog();
        let report = Auditor::new(&cat).audit_source(src).unwrap();
        assert!(
            report.is_sound(),
            "`{src}` should audit clean, got:\n{}",
            report.render()
        );
        assert_eq!(report.errors().count(), 0, "{src}");
    }

    #[test]
    fn shipped_query_shapes_audit_clean() {
        // Quasi-succinct aggregate + domain shapes (Figs. 2–3).
        audit_clean("max(S.Price) <= min(T.Price)");
        audit_clean("max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type");
        audit_clean("S.Type disjoint T.Type & count(S) < 4");
        audit_clean("S.Type subseteq T.Type & min(S.Price) >= 15");
        // Induced-weaker shapes (Fig. 4) + J^k_max (§5.2).
        audit_clean("avg(S.Price) <= avg(T.Price)");
        audit_clean("sum(S.Price) <= sum(T.Price)");
        audit_clean("sum(S.Price) = sum(T.Price) & freq(S) & freq(T)");
        audit_clean("count(S) < count(T)");
        // Final-verify-only shapes.
        audit_clean("S.Type != T.Type");
    }

    #[test]
    fn audit_all_strategy_families() {
        let cat = catalog();
        for opt in [Optimizer::default(), Optimizer::apriori_plus(), Optimizer::cap_one_var()] {
            let report = Auditor::new(&cat)
                .with_optimizer(opt)
                .audit_source("avg(S.Price) <= avg(T.Price) & count(S) < 4")
                .unwrap();
            assert!(report.is_sound(), "{}", report.render());
        }
    }

    #[test]
    fn injected_misclassification_is_detected() {
        let cat = catalog();
        let src = "count(S) < 4 & sum(S.Price) <= sum(T.Price)";
        // A "buggy" classifier that calls the sum comparison quasi-succinct.
        let auditor = Auditor::new(&cat).with_two_var_classifier(|c| {
            let mut cls = classify_two(c);
            if matches!(c, TwoVar::AggCmp { .. }) {
                cls.quasi_succinct = true;
            }
            cls
        });
        let report = auditor.audit_source(src).unwrap();
        assert!(!report.is_sound());
        let diag = report.errors().find(|d| d.code == "misclassified").expect("misclassified");
        // The span points at the offending constraint in the source.
        let span = diag.span.expect("span");
        assert_eq!(span.slice(src), Some("sum(S.Price) <= sum(T.Price)"));
    }

    #[test]
    fn doctored_trace_missing_recheck_is_rejected() {
        let cat = catalog();
        let src = "avg(S.Price) <= avg(T.Price)";
        let (ast, spans) = parse_query_spanned(src).unwrap();
        let (query, map) = bind_spanned(&ast, &spans, &cat).unwrap();
        let plan = Optimizer::default().build_plan(&query, &cat);
        let mut trace = plan.trace().clone();
        assert!(
            trace.nodes[0].pushed.iter().any(|w| *w != trace.nodes[0].constraint),
            "avg comparison should get induced weakenings"
        );

        // Drop the final re-evaluation of the original: the plan now relies
        // on the sound-only weakening alone.
        trace.final_two.clear();
        trace.nodes[0].reverified = false;
        let report = Auditor::new(&cat).audit_trace(&trace, &query, Some(&map));
        assert!(!report.is_sound());
        assert!(
            report.errors().any(|d| d.code == "induced-weaker-missing-recheck"),
            "got:\n{}",
            report.render()
        );
        // Lying in the node flag alone doesn't help: final_two is the
        // ground truth.
        let mut trace2 = plan.trace().clone();
        trace2.final_two.clear();
        let report2 = Auditor::new(&cat).audit_trace(&trace2, &query, None);
        assert!(report2.errors().any(|d| d.code == "induced-weaker-missing-recheck"));
    }

    #[test]
    fn foreign_and_dropped_constraints_are_rejected() {
        let cat = catalog();
        let (ast, spans) = parse_query_spanned("min(S.Price) >= 15 & S.Type = T.Type").unwrap();
        let (query, map) = bind_spanned(&ast, &spans, &cat).unwrap();
        let plan = Optimizer::default().build_plan(&query, &cat);

        // Plan audits clean as produced.
        let auditor = Auditor::new(&cat);
        assert!(auditor.audit_trace(plan.trace(), &query, Some(&map)).is_sound());

        // Doctor 1: drop the pushed 1-var condition.
        let mut t = plan.trace().clone();
        t.s_one.clear();
        let r = auditor.audit_trace(&t, &query, Some(&map));
        assert!(r.errors().any(|d| d.code == "one-var-dropped"), "{}", r.render());

        // Doctor 2: final verification checks a constraint not in the query.
        let mut t = plan.trace().clone();
        let (q2, _) = bind_spanned(
            &parse_query_spanned("S.Type != T.Type").unwrap().0,
            &parse_query_spanned("S.Type != T.Type").unwrap().1,
            &cat,
        )
        .unwrap();
        t.final_two.push(q2.two_var[0].clone());
        let r = auditor.audit_trace(&t, &query, Some(&map));
        assert!(r.errors().any(|d| d.code == "final-check-not-in-query"), "{}", r.render());

        // Doctor 3: a rewrite node for a foreign constraint.
        let mut t = plan.trace().clone();
        t.nodes[0].constraint = q2.two_var[0].clone();
        let r = auditor.audit_trace(&t, &query, None);
        assert!(r.errors().any(|d| d.code == "foreign-constraint"), "{}", r.render());
        assert!(r.errors().any(|d| d.code == "unplanned-constraint"), "{}", r.render());
    }

    #[test]
    fn unsanctioned_weakening_is_rejected() {
        let cat = catalog();
        let (ast, spans) = parse_query_spanned("sum(S.Price) >= sum(T.Price)").unwrap();
        let (query, map) = bind_spanned(&ast, &spans, &cat).unwrap();
        let plan = Optimizer::default().build_plan(&query, &cat);
        assert!(Auditor::new(&cat).audit_trace(plan.trace(), &query, Some(&map)).is_sound());

        // Doctor the induced set: push `max(S) >= min(T)` — NOT implied by
        // `sum(S) >= sum(T)` (sum on the bounding side weakens to nothing).
        let (wq, _) = bind_spanned(
            &parse_query_spanned("max(S.Price) >= min(T.Price)").unwrap().0,
            &parse_query_spanned("max(S.Price) >= min(T.Price)").unwrap().1,
            &cat,
        )
        .unwrap();
        let mut t = plan.trace().clone();
        t.nodes[0].pushed.push(wq.two_var[0].clone());
        let r = Auditor::new(&cat).audit_trace(&t, &query, Some(&map));
        assert!(r.errors().any(|d| d.code == "unsanctioned-weakening"), "{}", r.render());
    }

    #[test]
    fn dnf_audits_each_disjunct() {
        let cat = catalog();
        let reports = Auditor::new(&cat)
            .audit_dnf("max(S.Price) <= min(T.Price) | avg(S.Price) <= avg(T.Price)")
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(AuditReport::is_sound));
    }

    #[test]
    fn json_report_is_well_formed() {
        let cat = catalog();
        let report = Auditor::new(&cat)
            .with_two_var_classifier(|c| {
                let mut cls = classify_two(c);
                cls.anti_monotone = !cls.anti_monotone;
                cls
            })
            .audit_source("S.Type = T.Type")
            .unwrap();
        assert!(!report.is_sound());
        let json = report.to_json();
        assert!(json.contains("\"sound\": false"));
        assert!(json.contains("\"code\": \"misclassified\""));
        assert!(json.contains("\"span\": [0, 15]"), "{json}");
    }
}

//! Independent structural re-derivation of the paper's tables.
//!
//! Everything here is derived *from scratch* from the constraint AST and
//! the catalog — deliberately without calling `cfq_constraints::classify`,
//! `reduce`, or `induce` — so a bug in those modules shows up as a
//! derivation/classifier mismatch instead of being silently trusted. The
//! rules transcribed:
//!
//! * Figure 1 (plus \[15\]'s 1-var taxonomy): anti-monotonicity and
//!   (quasi-)succinctness per constraint shape, with vacuity folding
//!   against the catalog's column envelopes;
//! * Figures 2–3: which side of each quasi-succinct reduction is tight;
//! * Figure 4: which aggregate weakenings are sound (`avg→min`, `sum→max`
//!   on the bounded side, `avg→max` on the bounding side, `sum` never on
//!   the bounding side), including the non-negative-domain side condition;
//! * §5.2: which constraints justify a `J^k_max` iterative bound and in
//!   which direction.

use cfq_constraints::{Agg, CmpOp, OneVar, OneVarClass, SetRel, TwoVar, TwoVarClass, Var};
use cfq_core::JkSummary;
use cfq_types::{AttrId, Catalog};

/// The value envelope `[lo, hi]` of a numeric column; `None` when the
/// catalog is empty. `min`, `max`, and `avg` over any nonempty itemset all
/// land inside the envelope.
fn envelope(catalog: &Catalog, attr: AttrId) -> Option<(f64, f64)> {
    Some((catalog.column_min_num(attr)?, catalog.column_max_num(attr)?))
}

/// Whether a comparison against a constant is decided for *every* nonempty
/// set, given that the aggregate's reachable values span exactly `[lo, hi]`
/// (the extremes are hit by the singletons holding the column min/max).
/// Returns `Some(true)` for trivially true, `Some(false)` for trivially
/// false, `None` when both outcomes are reachable.
fn decided(reach_lo: f64, reach_hi: f64, op: CmpOp, v: f64) -> Option<bool> {
    match op {
        CmpOp::Le => {
            if v >= reach_hi {
                Some(true)
            } else if v < reach_lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if v > reach_hi {
                Some(true)
            } else if v <= reach_lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if v <= reach_lo {
                Some(true)
            } else if v > reach_hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if v < reach_lo {
                Some(true)
            } else if v >= reach_hi {
                Some(false)
            } else {
                None
            }
        }
        // Equality can only be *refuted* by the envelope (a target inside
        // it may still be unreachable, but never provably hit everywhere).
        CmpOp::Eq => (v < reach_lo || v > reach_hi).then_some(false),
        CmpOp::Ne => (v < reach_lo || v > reach_hi).then_some(true),
    }
}

/// Re-derives the 1-var classification from the AST shape (\[15\]'s
/// taxonomy, Definitions 1–2). A constraint that is decided for every set
/// — trivially true (no violated sets) or trivially false (no satisfied
/// sets) — is *vacuously* anti-monotone regardless of its operator shape.
pub fn derive_one(c: &OneVar, catalog: &Catalog) -> OneVarClass {
    match c {
        // Domain constraints: violated sets keep violating under growth
        // exactly for ⊆-like shapes (⊆, ∩=∅, ⊉). All are succinct: their
        // solution spaces are powerset-algebra expressions (Lemma 1).
        OneVar::Domain { rel, .. } => OneVarClass {
            anti_monotone: matches!(rel, SetRel::Subset | SetRel::Disjoint | SetRel::NotSuperset),
            succinct: true,
        },
        OneVar::AggCmp { agg, attr, op, value, .. } => {
            let env = envelope(catalog, *attr);
            match agg {
                // min can only fall as the set grows → lower bounds prune.
                Agg::Min => OneVarClass {
                    anti_monotone: matches!(op, CmpOp::Ge | CmpOp::Gt)
                        || env.is_some_and(|(lo, hi)| decided(lo, hi, *op, *value).is_some()),
                    succinct: true,
                },
                // max can only rise as the set grows → upper bounds prune.
                Agg::Max => OneVarClass {
                    anti_monotone: matches!(op, CmpOp::Le | CmpOp::Lt)
                        || env.is_some_and(|(lo, hi)| decided(lo, hi, *op, *value).is_some()),
                    succinct: true,
                },
                // sum is monotone in the set exactly when the domain does
                // not change sign: non-negative → grows (upper bounds
                // prune), non-positive → falls (lower bounds prune).
                Agg::Sum => {
                    let grows = env.is_none_or(|(lo, _)| lo >= 0.0);
                    let falls = env.is_none_or(|(_, hi)| hi <= 0.0);
                    OneVarClass {
                        anti_monotone: (matches!(op, CmpOp::Le | CmpOp::Lt) && grows)
                            || (matches!(op, CmpOp::Ge | CmpOp::Gt) && falls),
                        succinct: false,
                    }
                }
                // avg moves in neither direction predictably.
                Agg::Avg => OneVarClass { anti_monotone: false, succinct: false },
            }
        }
        // count grows with the set → upper bounds prune; only weakly
        // succinct per [15], treated as non-succinct.
        OneVar::CountCmp { op, .. } => OneVarClass {
            anti_monotone: matches!(op, CmpOp::Le | CmpOp::Lt),
            succinct: false,
        },
    }
}

/// Note: for min/max the *constant-folding* in [`derive_one`] intentionally
/// also fires on trivially-false sides that the Min/Max base rule already
/// covers (e.g. `min ≥ v` with `v > M`); the disjunction makes that
/// harmless.
///
/// Re-derives the 2-var classification (Figure 1) from the AST shape.
///
/// Anti-monotone requires growth of either variable to preserve violation:
/// among domain relations only `∩ = ∅`, among aggregate comparisons only
/// `max(S) ≤ min(T)` and its mirror `min(S) ≥ max(T)`. Quasi-succinct
/// requires a reduction to two succinct 1-var conditions computable from
/// L1 alone: every domain relation qualifies; aggregate comparisons
/// qualify iff both sides are min/max (succinct aggregates) and the
/// operator is an inequality (Figures 2–3 have no `=`/`≠` aggregate rows).
pub fn derive_two(c: &TwoVar) -> TwoVarClass {
    match c {
        TwoVar::Domain { rel, .. } => TwoVarClass {
            anti_monotone: *rel == SetRel::Disjoint,
            quasi_succinct: true,
        },
        TwoVar::AggCmp { s_agg, op, t_agg, .. } => TwoVarClass {
            anti_monotone: matches!(
                (s_agg, op, t_agg),
                (Agg::Max, CmpOp::Le | CmpOp::Lt, Agg::Min)
                    | (Agg::Min, CmpOp::Ge | CmpOp::Gt, Agg::Max)
            ),
            quasi_succinct: matches!(s_agg, Agg::Min | Agg::Max)
                && matches!(t_agg, Agg::Min | Agg::Max)
                && matches!(op, CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt),
        },
        // No succinct 1-var count reduction is computable from L1 alone.
        TwoVar::CountCmp { .. } => {
            TwoVarClass { anti_monotone: false, quasi_succinct: false }
        }
    }
}

/// Expected `(s_tight, t_tight)` of a quasi-succinct reduction
/// (Figures 2–3). A side is tight when a frequent *singleton* partner
/// witnesses validity; the coverage sides of `⊆`/`=`, the non-empty side
/// of `⊄`, and both sides of `≠` need a multi-element witness `L1` cannot
/// promise, so they are sound-only. Returns `None` for shapes that have no
/// quasi-succinct reduction at all.
pub fn expected_tightness(c: &TwoVar) -> Option<(bool, bool)> {
    match c {
        TwoVar::Domain { rel, .. } => Some(match rel {
            SetRel::Disjoint | SetRel::Intersects | SetRel::NotSuperset => (true, true),
            SetRel::Subset => (false, true),
            SetRel::NotSubset => (false, true),
            SetRel::Superset => (true, false),
            SetRel::Eq | SetRel::Ne => (false, false),
        }),
        // Figure 3 reductions pick the loosest frequent singleton partner
        // on each side — tight in both directions.
        TwoVar::AggCmp { .. } => derive_two(c).quasi_succinct.then_some((true, true)),
        TwoVar::CountCmp { .. } => None,
    }
}

/// Whether `weak` is a Figure-4-sanctioned sound weakening of `original`
/// (`original ⇒ weak` for every pair of sets), re-derived structurally:
///
/// * attributes and variable orientation must be unchanged;
/// * the operator must be the original's, or — for an `=` original — one
///   of its two directional relaxations;
/// * per side, the aggregate must be unchanged, or replaced by one that
///   the original aggregate dominates in the needed direction: on the
///   bounded side `avg→min` (min ≤ avg) and `sum→max` (max ≤ sum, only on
///   a non-negative domain); on the bounding side `avg→max` (avg ≤ max)
///   and nothing for `sum`.
pub fn is_sanctioned_weakening(original: &TwoVar, weak: &TwoVar, catalog: &Catalog) -> bool {
    if original == weak {
        return true;
    }
    let (TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr },
         TwoVar::AggCmp { s_agg: ws, s_attr: was, op: wop, t_agg: wt, t_attr: wat }) =
        (original, weak)
    else {
        return false;
    };
    if s_attr != was || t_attr != wat {
        return false;
    }
    let direction_ok = wop == op
        || (*op == CmpOp::Eq && matches!(wop, CmpOp::Le | CmpOp::Ge));
    if !direction_ok {
        return false;
    }
    let non_negative = |attr: &AttrId| {
        catalog.column_min_num(*attr).map(|m| m >= 0.0).unwrap_or(true)
    };
    // `bounded` side: its aggregate sits on the small side of ≤, so any
    // replacement must be ≤ the original aggregate on every set.
    let bounded_ok = |orig: Agg, new: Agg, attr: &AttrId| {
        orig == new
            || matches!((orig, new), (Agg::Avg, Agg::Min))
            || (matches!((orig, new), (Agg::Sum, Agg::Max)) && non_negative(attr))
    };
    // `bounding` side: any replacement must be ≥ the original on every set.
    let bounding_ok = |orig: Agg, new: Agg| {
        orig == new || matches!((orig, new), (Agg::Avg, Agg::Max))
    };
    match wop {
        CmpOp::Le | CmpOp::Lt => bounded_ok(*s_agg, *ws, s_attr) && bounding_ok(*t_agg, *wt),
        CmpOp::Ge | CmpOp::Gt => bounding_ok(*s_agg, *ws) && bounded_ok(*t_agg, *wt, t_attr),
        _ => false,
    }
}

/// Whether a `J^k_max` task attachment is justified by the constraint's
/// shape (§5.2): the bound series must come from a `sum` (over a
/// non-negative domain) or a `count` on the *partner* side, the original
/// comparison must bound the pruned side from above (directly, mirrored,
/// or as half of an equality), and the task's own comparison must be an
/// upper bound (the series is an upper envelope).
pub fn jk_is_justified(c: &TwoVar, jk: &JkSummary, catalog: &Catalog) -> bool {
    if !matches!(jk.op, CmpOp::Le | CmpOp::Lt) {
        return false;
    }
    let non_negative = |attr: &AttrId| {
        catalog.column_min_num(*attr).map(|m| m >= 0.0).unwrap_or(true)
    };
    match c {
        // The pruned side's own aggregate places no obligation on the task
        // (any aggregate can be bounded by the partner's series); the
        // partner side must be the sum source bounding the pruned side
        // from above. An unfolded `=` must use the non-strict bound.
        TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => match jk.pruned {
            Var::S => {
                matches!(op, CmpOp::Le | CmpOp::Lt | CmpOp::Eq)
                    && *t_agg == Agg::Sum
                    && non_negative(t_attr)
                    && (*op != CmpOp::Eq || jk.op == CmpOp::Le)
            }
            Var::T => {
                matches!(op, CmpOp::Ge | CmpOp::Gt | CmpOp::Eq)
                    && *s_agg == Agg::Sum
                    && non_negative(s_attr)
                    && (*op != CmpOp::Eq || jk.op == CmpOp::Le)
            }
        },
        // count series: non-negative by construction, no domain gate.
        TwoVar::CountCmp { op, .. } => match jk.pruned {
            Var::S => {
                matches!(op, CmpOp::Le | CmpOp::Lt | CmpOp::Eq)
                    && (*op != CmpOp::Eq || jk.op == CmpOp::Le)
            }
            Var::T => {
                matches!(op, CmpOp::Ge | CmpOp::Gt | CmpOp::Eq)
                    && (*op != CmpOp::Eq || jk.op == CmpOp::Le)
            }
        },
        TwoVar::Domain { .. } => false,
    }
}

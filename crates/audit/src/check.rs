//! The obligation walker: checks every node of a [`PlanTrace`] against the
//! independently re-derived rules in [`crate::derive`].
//!
//! Obligations enforced (error unless noted):
//!
//! 1. every constraint's production classification matches the structural
//!    re-derivation (`misclassified` / `one-var-misclassified`);
//! 2. every constraint pushed into the quasi-succinct reduction really is
//!    quasi-succinct (`induced-not-qs`), and the reduction's tightness
//!    claims match Figures 2–3 (`tightness-overclaimed`; the conservative
//!    direction is the `reduction-not-tight` warning);
//! 3. every induced weaker constraint is a Figure-4-sanctioned weakening
//!    (`unsanctioned-weakening`) and is dominated by a final re-evaluation
//!    of the original (`induced-weaker-missing-recheck`);
//! 4. every `J^k_max` task bounds the correct side in the correct
//!    direction (`jk-bound-direction`);
//! 5. the plan preserves the answer-set invariant: every original
//!    constraint is re-verified at pair formation (`missing-final-recheck`,
//!    `unplanned-constraint`), and the plan neither checks nor pushes any
//!    constraint the query does not contain (`foreign-constraint`,
//!    `final-check-not-in-query`, `one-var-dropped`).

use cfq_constraints::{
    classify_one, reduce_quasi_succinct, BoundQuery, OneVar, TwoVar, TwoVarClass,
};
use cfq_core::{PlanTrace, TraceNode};
use cfq_types::{Catalog, ItemId};

use crate::derive::{
    derive_one, derive_two, expected_tightness, is_sanctioned_weakening, jk_is_justified,
};
use crate::diag::{AuditReport, Severity};
use crate::SpanMap;

/// Cross-checks one 1-var constraint's production classification against
/// the structural derivation.
pub(crate) fn check_one_var(
    c: &OneVar,
    idx: usize,
    catalog: &Catalog,
    spans: Option<&SpanMap>,
    report: &mut AuditReport,
) {
    let derived = derive_one(c, catalog);
    let actual = classify_one(c, catalog);
    if derived != actual {
        report.push(
            Severity::Error,
            "one-var-misclassified",
            format!(
                "classifier says anti-monotone={} succinct={}, structural derivation says \
                 anti-monotone={} succinct={}",
                actual.anti_monotone, actual.succinct, derived.anti_monotone, derived.succinct
            ),
            spans.and_then(|m| m.one.get(idx).copied()),
            Some(c.to_string()),
        );
    }
}

/// Audits one rewrite node (one original 2-var constraint). `reverified`
/// is computed by the caller from the trace's final-verification list — the
/// node's own claim is not trusted.
fn check_node(
    node: &TraceNode,
    reverified: bool,
    span: Option<cfq_constraints::Span>,
    catalog: &Catalog,
    classify: &dyn Fn(&TwoVar) -> TwoVarClass,
    report: &mut AuditReport,
) {
    let c = &node.constraint;
    let name = || Some(c.to_string());

    // Obligation 1: Figure-1 classification cross-check.
    let derived = derive_two(c);
    let actual = classify(c);
    if derived != actual {
        report.push(
            Severity::Error,
            "misclassified",
            format!(
                "classifier says anti-monotone={} quasi-succinct={}, structural derivation \
                 says anti-monotone={} quasi-succinct={} (Figure 1)",
                actual.anti_monotone,
                actual.quasi_succinct,
                derived.anti_monotone,
                derived.quasi_succinct
            ),
            span,
            name(),
        );
    }

    let mut induced = false;
    for w in &node.pushed {
        if w == c {
            // Pushed verbatim: must genuinely be quasi-succinct.
            if !derived.quasi_succinct {
                report.push(
                    Severity::Error,
                    "induced-not-qs",
                    "pushed into the quasi-succinct reduction, but the structural \
                     derivation says it has no L1-computable reduction (Figures 2–3)"
                        .into(),
                    span,
                    name(),
                );
            }
        } else {
            induced = true;
            // Obligation 3: sound weakening, itself reducible, dominated by
            // a final re-check of the original.
            if !is_sanctioned_weakening(c, w, catalog) {
                report.push(
                    Severity::Error,
                    "unsanctioned-weakening",
                    format!(
                        "induced `{w}` is not a Figure-4-sanctioned weakening — it is not \
                         implied by the original on every pair of sets"
                    ),
                    span,
                    name(),
                );
            }
            if !derive_two(w).quasi_succinct {
                report.push(
                    Severity::Error,
                    "induced-not-qs",
                    format!("induced `{w}` is itself not quasi-succinct — inducing it wins nothing"),
                    span,
                    name(),
                );
            }
        }
        check_tightness(w, span, catalog, report);
    }

    if induced && !reverified {
        report.push(
            Severity::Error,
            "induced-weaker-missing-recheck",
            "induced weaker constraints are sound-only; the original must be re-evaluated \
             at pair formation, but this plan never re-checks it — the answer set would \
             contain pairs satisfying only the weakening"
                .into(),
            span,
            name(),
        );
    } else if !reverified {
        report.push(
            Severity::Error,
            "missing-final-recheck",
            "never re-evaluated at pair formation: the quasi-succinct reduction prunes \
             candidate sets but cannot validate a particular (S, T) pair"
                .into(),
            span,
            name(),
        );
    }

    // Obligation 4: J^k_max direction.
    for jk in &node.jk {
        if !jk_is_justified(c, jk, catalog) {
            report.push(
                Severity::Error,
                "jk-bound-direction",
                format!(
                    "J^k_max task prunes {:?} with `{:?}`, which §5.2 does not justify for \
                     this constraint shape (the bound series is an upper envelope of the \
                     partner's sum/count)",
                    jk.pruned, jk.op
                ),
                span,
                name(),
            );
        }
    }
}

/// Obligation 2: the reduction's tightness flags must match Figures 2–3.
/// The flags are structural, so probing with the full item universe as L1
/// (avoiding the degenerate empty-L1 special cases) observes them.
fn check_tightness(
    w: &TwoVar,
    span: Option<cfq_constraints::Span>,
    catalog: &Catalog,
    report: &mut AuditReport,
) {
    let Some((exp_s, exp_t)) = expected_tightness(w) else {
        return; // not reducible; already reported as induced-not-qs
    };
    let universe: Vec<ItemId> = (0..catalog.n_items() as u32).map(ItemId).collect();
    let Some(red) = reduce_quasi_succinct(w, &universe, &universe, catalog) else {
        return; // classifier refused; already reported as misclassified
    };
    for (side, claimed, expected) in [("S", red.s_tight, exp_s), ("T", red.t_tight, exp_t)] {
        if claimed && !expected {
            report.push(
                Severity::Error,
                "tightness-overclaimed",
                format!(
                    "reduction claims a tight {side}-side, but Figures 2–3 mark it \
                     sound-only — relying on it would prune valid answers"
                ),
                span,
                Some(w.to_string()),
            );
        } else if !claimed && expected {
            report.push(
                Severity::Warning,
                "reduction-not-tight",
                format!(
                    "reduction marks the {side}-side sound-only where Figures 2–3 allow a \
                     tight one — sanctioned pruning left on the table"
                ),
                span,
                Some(w.to_string()),
            );
        }
    }
}

/// Audits a full plan trace against the query it was planned from.
pub(crate) fn check_trace(
    trace: &PlanTrace,
    query: &BoundQuery,
    catalog: &Catalog,
    classify: &dyn Fn(&TwoVar) -> TwoVarClass,
    spans: Option<&SpanMap>,
    report: &mut AuditReport,
) {
    for (i, c) in query.one_var.iter().enumerate() {
        check_one_var(c, i, catalog, spans, report);
    }

    // Every pushed 1-var condition must come from the query (pruning with a
    // foreign condition drops answers), and every query 1-var must be
    // pushed (succinct constraints are enforced via candidate generation —
    // dropping one admits invalid sets).
    for pushed in trace.s_one.iter().chain(&trace.t_one) {
        if !query.one_var.contains(pushed) {
            report.push(
                Severity::Error,
                "foreign-constraint",
                "plan pushes a 1-var condition the query does not contain".into(),
                None,
                Some(pushed.to_string()),
            );
        }
    }
    for (i, c) in query.one_var.iter().enumerate() {
        if !trace.s_one.contains(c) && !trace.t_one.contains(c) {
            report.push(
                Severity::Error,
                "one-var-dropped",
                "1-var constraint missing from the plan's pushed conditions".into(),
                spans.and_then(|m| m.one.get(i).copied()),
                Some(c.to_string()),
            );
        }
    }

    let span_of = |c: &TwoVar| {
        spans.and_then(|m| {
            query.two_var.iter().position(|q| q == c).and_then(|i| m.two.get(i).copied())
        })
    };

    for node in &trace.nodes {
        if !query.two_var.contains(&node.constraint) {
            report.push(
                Severity::Error,
                "foreign-constraint",
                "plan rewrites a 2-var constraint the query does not contain".into(),
                None,
                Some(node.constraint.to_string()),
            );
            continue;
        }
        let reverified = node.reverified && trace.final_two.contains(&node.constraint);
        check_node(node, reverified, span_of(&node.constraint), catalog, classify, report);
    }

    // Obligation 5: answer-set invariant. Every original 2-var constraint
    // needs a rewrite node (else nothing accounts for it), and the final
    // verification may only check constraints the query contains.
    for (i, c) in query.two_var.iter().enumerate() {
        if !trace.nodes.iter().any(|n| &n.constraint == c) {
            report.push(
                Severity::Error,
                "unplanned-constraint",
                "2-var constraint has no rewrite node — the plan does not account for it".into(),
                spans.and_then(|m| m.two.get(i).copied()),
                Some(c.to_string()),
            );
        }
    }
    for c in &trace.final_two {
        if !query.two_var.contains(c) {
            report.push(
                Severity::Error,
                "final-check-not-in-query",
                "final verification checks a constraint the query does not contain — it \
                 would drop valid answers"
                    .into(),
                None,
                Some(c.to_string()),
            );
        }
    }
}

//! The central correctness property of the whole system: every strategy —
//! the full Figure-7 optimizer (dovetailed and sequential), CAP-1-var, and
//! Apriori⁺ — returns *exactly* the answer of a brute-force oracle, for
//! randomized databases, catalogs, and constraint conjunctions drawn from
//! the whole CFQ language.

use cfq::prelude::*;
use proptest::prelude::*;

/// Brute-force oracle: all frequent sets per variable (with 1-var
/// constraints applied), then all pairs satisfying the 2-var constraints,
/// then each side restricted to pair participants (Definition 3).
#[allow(clippy::type_complexity)]
fn oracle(
    db: &TransactionDb,
    catalog: &Catalog,
    q: &BoundQuery,
    min_support: u64,
) -> (Vec<Itemset>, Vec<Itemset>, u64) {
    let all: Itemset = (0..db.n_items() as u32).collect();
    let frequent_valid = |var: Var| -> Vec<Itemset> {
        let one: Vec<OneVar> = q.one_var.iter().filter(|c| c.var() == var).cloned().collect();
        all.all_nonempty_subsets()
            .into_iter()
            .filter(|s| db.support(s) >= min_support)
            .filter(|s| cfq::constraints::eval_all_one(&one, s, catalog))
            .collect()
    };
    let s_cand = frequent_valid(Var::S);
    let t_cand = frequent_valid(Var::T);
    let mut pairs = 0u64;
    let mut s_used = vec![false; s_cand.len()];
    let mut t_used = vec![false; t_cand.len()];
    for (si, s) in s_cand.iter().enumerate() {
        for (ti, t) in t_cand.iter().enumerate() {
            if cfq::constraints::eval_all_two(&q.two_var, s, t, catalog) {
                pairs += 1;
                s_used[si] = true;
                t_used[ti] = true;
            }
        }
    }
    let filter = |c: Vec<Itemset>, used: &[bool]| {
        let mut out: Vec<Itemset> = c
            .into_iter()
            .enumerate()
            .filter(|(i, _)| used[*i])
            .map(|(_, s)| s)
            .collect();
        out.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
        out
    };
    (filter(s_cand, &s_used), filter(t_cand, &t_used), pairs)
}

fn sorted_sets(v: &[(Itemset, u64)]) -> Vec<Itemset> {
    let mut out: Vec<Itemset> = v.iter().map(|(s, _)| s.clone()).collect();
    out.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
    out
}

/// Constraint templates instantiated with random parameters. Returned as
/// query text so the parser/binder are exercised too.
fn constraint_pool(p1: u32, p2: u32, ty: char) -> Vec<String> {
    vec![
        format!("max(S.Price) <= {p1}"),
        format!("min(S.Price) <= {p2}"),
        format!("min(T.Price) >= {p2}"),
        format!("sum(S.Price) <= {}", p1 + p2),
        format!("avg(T.Price) >= {p2}"),
        format!("count(S) <= 3"),
        format!("S.Type = {{{ty}}}"),
        format!("S.Type intersects {{{ty}}}"),
        format!("T.Type disjoint {{{ty}}}"),
        "S.Type disjoint T.Type".to_string(),
        "S.Type = T.Type".to_string(),
        "S.Type subset T.Type".to_string(),
        "max(S.Price) <= min(T.Price)".to_string(),
        "min(S.Price) <= max(T.Price)".to_string(),
        "max(S.Price) >= max(T.Price)".to_string(),
        "sum(S.Price) <= sum(T.Price)".to_string(),
        "avg(S.Price) <= avg(T.Price)".to_string(),
        "sum(S.Price) <= avg(T.Price)".to_string(),
        "S disjoint T".to_string(),
        "count(S.Type) <= count(T.Type)".to_string(),
        "count(S) >= count(T)".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_strategies_match_the_oracle(
        n_items in 3usize..7,
        txs in prop::collection::vec(
            prop::collection::vec(0u32..7, 1..5),
            4..16,
        ),
        prices in prop::collection::vec(1u32..50, 7),
        types in prop::collection::vec(0u32..3, 7),
        picks in prop::collection::vec(0usize..21, 1..3),
        p1 in 5u32..40,
        p2 in 1u32..25,
        min_support in 1u64..4,
    ) {
        // Build database and catalog.
        let txs: Vec<Vec<ItemId>> = txs
            .into_iter()
            .map(|t| t.into_iter().map(|i| ItemId(i % n_items as u32)).collect())
            .collect();
        let db = TransactionDb::new(n_items, txs).unwrap();
        let mut b = CatalogBuilder::new(n_items);
        b.num_attr("Price", prices[..n_items].iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types[..n_items].iter().map(|&t| ((b'a' + t as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();

        // Build a random conjunction from the pool.
        let pool = constraint_pool(p1, p2, 'a');
        let srcs: Vec<&str> = picks.iter().map(|&i| pool[i].as_str()).collect();
        let text = srcs.join(" & ");
        let q = bind_query(&parse_query(&text).unwrap(), &catalog).unwrap();

        let (oracle_s, oracle_t, oracle_pairs) = oracle(&db, &catalog, &q, min_support);

        let env = QueryEnv::new(&db, &catalog, min_support);
        for (name, opt) in [
            ("apriori+", Optimizer::apriori_plus()),
            ("cap-1var", Optimizer::cap_one_var()),
            ("full", Optimizer::default()),
            ("sequential", Optimizer { dovetail: false, ..Optimizer::default() }),
            ("no-jkmax", Optimizer { use_jkmax: false, ..Optimizer::default() }),
        ] {
            let out = opt.evaluate(&q, &env).unwrap();
            prop_assert_eq!(
                out.pair_result.count, oracle_pairs,
                "{} pair count diverged for `{}`", name, &text
            );
            prop_assert_eq!(
                sorted_sets(&out.s_sets), oracle_s.clone(),
                "{} S-sets diverged for `{}`", name, &text
            );
            prop_assert_eq!(
                sorted_sets(&out.t_sets), oracle_t.clone(),
                "{} T-sets diverged for `{}`", name, &text
            );
        }
    }
}

/// A fixed regression matrix covering each strategy family on a hand-built
/// database (fast; always runs even when proptest shrinks are disabled).
#[test]
fn fixed_matrix() {
    let db = TransactionDb::from_u32(
        5,
        &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2, 3, 4], &[0, 1, 2, 3, 4]],
    );
    let mut b = CatalogBuilder::new(5);
    b.num_attr("Price", vec![5.0, 10.0, 15.0, 20.0, 25.0]).unwrap();
    b.cat_attr("Type", &["a", "b", "a", "b", "c"]).unwrap();
    let catalog = b.build();

    for text in [
        "max(S.Price) <= min(T.Price)",
        "S.Type disjoint T.Type & min(S.Price) <= 10",
        "sum(S.Price) <= sum(T.Price) & count(T) <= 2",
        "avg(S.Price) <= avg(T.Price) & S.Type = {a}",
    ] {
        let q = bind_query(&parse_query(text).unwrap(), &catalog).unwrap();
        for min_support in 1..=3u64 {
            let (os, ot, op) = oracle(&db, &catalog, &q, min_support);
            let env = QueryEnv::new(&db, &catalog, min_support);
            let out = Optimizer::default().evaluate(&q, &env).unwrap();
            assert_eq!(out.pair_result.count, op, "`{text}` @ {min_support}");
            assert_eq!(sorted_sets(&out.s_sets), os, "`{text}` @ {min_support}");
            assert_eq!(sorted_sets(&out.t_sets), ot, "`{text}` @ {min_support}");
        }
    }
}

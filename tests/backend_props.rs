//! Property tests for the vertical counting backends
//! (`cfq_mining::backend`, `cfq_mining::bitmap`):
//!
//! * the complete lattice mined through every backend (horizontal trie,
//!   tidset intersection, u64 bitmaps with diffsets, and the auto
//!   crossover) is bit-identical to the horizontal reference across
//!   random universes, supports, and row shapes,
//! * one-off `BitmapCounter` batches agree with `TrieCounter` for
//!   arbitrary candidate groups (shared-prefix recurrence + diffsets),
//! * optimizer answers are backend-invariant end to end,
//! * edge cases hold: empty universe, a dense item present in every row,
//!   support = 1, and an empty database.

use cfq::mining::{BitmapCounter, BitmapIndex, SupportCounter, TrieCounter};
use cfq::prelude::*;
use proptest::prelude::*;

fn build_db(rows: &[Vec<u32>], n_items: usize) -> TransactionDb {
    let rows: Vec<Vec<ItemId>> =
        rows.iter().map(|r| r.iter().map(|&i| ItemId(i)).collect()).collect();
    TransactionDb::new(n_items, rows).unwrap()
}

fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
    fs.iter().map(|(s, n)| (s.clone(), n)).collect()
}

fn mine(db: &TransactionDb, cfg: &AprioriConfig) -> (Vec<(Itemset, u64)>, WorkStats) {
    let mut stats = WorkStats::new();
    let fs = apriori(db, cfg, &mut stats);
    (collect(&fs), stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The tentpole invariant: every backend mines the same lattice,
    /// set for set and support for support.
    #[test]
    fn all_backends_mine_identical_lattices(
        rows in prop::collection::vec(prop::collection::vec(0u32..10, 0..7), 1..40),
        mask in 1u16..1023,
        min_support in 1u64..5,
        trim_bit in 0u32..2,
    ) {
        let trim = trim_bit == 1;
        let db = build_db(&rows, 10);
        let universe: Vec<ItemId> =
            (0..10u32).filter(|i| mask & (1 << i) != 0).map(ItemId).collect();
        let base_cfg = AprioriConfig::new(min_support)
            .with_universe(universe.clone())
            .with_trim(trim);
        let (reference, _) = mine(&db, &base_cfg);
        for backend in CountingBackend::all() {
            let (got, stats) = mine(&db, &base_cfg.clone().with_backend(backend));
            prop_assert_eq!(&reference, &got, "{} diverged", backend);
            if !reference.is_empty()
                && matches!(backend, CountingBackend::Tidset | CountingBackend::Bitmap)
            {
                // Fully vertical runs read the database exactly once.
                prop_assert_eq!(stats.db_scans, 1, "{} scan count", backend);
            }
        }
    }

    /// Raw counter agreement: a BitmapCounter batch over arbitrary
    /// candidates (grouped by shared prefix internally, taking the
    /// diffset path at depth) matches the horizontal trie counter.
    #[test]
    fn bitmap_counter_matches_trie_on_arbitrary_batches(
        rows in prop::collection::vec(prop::collection::vec(0u32..9, 0..6), 1..70),
        mask in 1u16..511,
        k in 1usize..4,
    ) {
        let db = build_db(&rows, 9);
        let universe: Itemset = (0..9u32).filter(|i| mask & (1 << i) != 0).collect();
        let cands: Vec<Itemset> =
            universe.all_nonempty_subsets().into_iter().filter(|s| s.len() == k).collect();
        prop_assume!(!cands.is_empty());
        let index = BitmapIndex::build(&db);
        let counter = BitmapCounter::new(&index);
        prop_assert_eq!(TrieCounter.count(&db, &cands), counter.count(&db, &cands));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// End to end: optimizer answers are backend-invariant for every
    /// strategy family on the paper's four query shapes.
    #[test]
    fn optimizer_answers_are_backend_invariant(
        prices in prop::collection::vec(1u32..40, 6),
        types in prop::collection::vec(0u32..3, 6),
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 0..5), 4..20),
        min_support in 1u64..4,
        which in 0usize..4,
    ) {
        let queries = [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
            "avg(S.Price) <= avg(T.Price) & S.Type = T.Type",
        ];
        let db = build_db(&rows, 6);
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types.iter().map(|&t| ((b'a' + (t % 3) as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();
        let q = bind_query(&parse_query(queries[which]).unwrap(), &catalog).unwrap();
        for opt in [
            Optimizer::default(),
            Optimizer { dovetail: false, ..Optimizer::default() },
        ] {
            let reference = opt
                .evaluate(&q, &QueryEnv::new(&db, &catalog, min_support))
                .unwrap();
            for backend in CountingBackend::all() {
                let env = QueryEnv::new(&db, &catalog, min_support).with_backend(backend);
                let got = opt.evaluate(&q, &env).unwrap();
                prop_assert_eq!(&reference.s_sets, &got.s_sets, "`{}` {}", queries[which], backend);
                prop_assert_eq!(&reference.t_sets, &got.t_sets, "`{}` {}", queries[which], backend);
                prop_assert_eq!(&reference.pair_result.pairs, &got.pair_result.pairs);
                prop_assert_eq!(reference.pair_result.count, got.pair_result.count);
                prop_assert_eq!(&reference.v_histories, &got.v_histories);
            }
        }
    }
}

#[test]
fn effectively_empty_universe_mines_nothing_under_every_backend() {
    // An empty `universe` vec is AprioriConfig's "all items" sentinel, so
    // the genuine empty-universe edge is a universe of items that never
    // occur: level 1 is empty and every backend must agree.
    let db = build_db(&[vec![0, 1], vec![1, 2]], 4);
    for backend in CountingBackend::all() {
        let cfg = AprioriConfig::new(1)
            .with_universe(vec![ItemId(3)])
            .with_backend(backend);
        let mut stats = WorkStats::new();
        let fs = apriori(&db, &cfg, &mut stats);
        assert_eq!(fs.total(), 0, "{backend}: empty universe must mine nothing");
    }
}

#[test]
fn empty_database_counts_zero_under_every_backend() {
    let db = TransactionDb::new(5, Vec::<Vec<ItemId>>::new()).unwrap();
    for backend in CountingBackend::all() {
        let cfg = AprioriConfig::new(1).with_backend(backend);
        let mut stats = WorkStats::new();
        let fs = apriori(&db, &cfg, &mut stats);
        assert_eq!(fs.total(), 0, "{backend}: empty db must mine nothing");
    }
}

#[test]
fn all_dense_item_and_support_one_agree_across_backends() {
    // Item 0 appears in every row (a fully dense bitmap column whose
    // diffsets are empty); support = 1 keeps every candidate alive, the
    // worst case for the deep diffset recurrence.
    let rows: Vec<Vec<u32>> = (0..130u32)
        .map(|r| {
            let mut row = vec![0u32];
            row.extend((1..6u32).filter(|i| (r + i) % (i + 1) == 0));
            row
        })
        .collect();
    let db = build_db(&rows, 6);
    let reference = {
        let mut stats = WorkStats::new();
        collect(&apriori(&db, &AprioriConfig::new(1), &mut stats))
    };
    assert!(
        reference.iter().any(|(s, n)| s.len() == 1 && *n == db.len() as u64),
        "the dense item must be frequent in every row"
    );
    for backend in CountingBackend::all() {
        let mut stats = WorkStats::new();
        let got = collect(&apriori(&db, &AprioriConfig::new(1).with_backend(backend), &mut stats));
        assert_eq!(reference, got, "{backend} diverged at support=1");
    }
}

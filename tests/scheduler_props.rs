//! Property test for the scheduler's batched single-flight mining: when
//! several concurrent queries over the same universe — at *different*
//! supports — coalesce onto one mining pass (executed at the group's
//! minimum support), every member's answer must be bit-identical to the
//! answer it would get mined alone: same sets, same support counts, same
//! valid pairs. This is the weaker-envelope reuse guarantee under
//! concurrency instead of across time.

use cfq::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const QUERIES: [&str; 3] = [
    "max(S.Price) <= 80 & min(T.Price) >= 80",
    "sum(S.Price) <= sum(T.Price)",
    "max(S.Price) <= min(T.Price)",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn batched_members_match_solo_mining(
        seed in 0u64..1_000,
        qi in 0usize..QUERIES.len(),
        supports in prop::collection::vec(2u64..7, 2..5),
    ) {
        let sc = ScenarioBuilder::new(QuestConfig { seed, ..QuestConfig::tiny() })
            .split_uniform_prices((10.0, 100.0), (40.0, 160.0))
            .unwrap();
        let query = QUERIES[qi];

        // One engine, a batch window wide enough that every
        // barrier-released member lands in the leader's group.
        let config = EngineConfig {
            batch_window: Duration::from_millis(100),
            ..EngineConfig::default()
        };
        let engine = Engine::with_config(sc.db.clone(), sc.catalog, config).unwrap();

        let barrier = Arc::new(Barrier::new(supports.len()));
        let handles: Vec<_> = supports
            .iter()
            .map(|&support| {
                let session = engine.session();
                let barrier = Arc::clone(&barrier);
                let s_items = sc.s_items.clone();
                let t_items = sc.t_items.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    session
                        .query(query)
                        .min_support(support)
                        .s_universe(s_items)
                        .t_universe(t_items)
                        .run()
                        .unwrap()
                })
            })
            .collect();
        let grouped: Vec<QueryOutcome> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Solo reference per member: the one-shot optimizer at exactly
        // that member's support, no cache and no scheduler involved.
        let catalog = engine.catalog();
        let bound = bind_query(&parse_query(query).unwrap(), &catalog).unwrap();
        for (&support, out) in supports.iter().zip(&grouped) {
            let env = QueryEnv::new(&sc.db, &catalog, support)
                .with_s_universe(sc.s_items.clone())
                .with_t_universe(sc.t_items.clone());
            let solo = Optimizer::default().evaluate(&bound, &env).unwrap();
            prop_assert_eq!(
                &out.outcome.s_sets, &solo.s_sets,
                "S side for `{}` at support {}", query, support
            );
            prop_assert_eq!(
                &out.outcome.t_sets, &solo.t_sets,
                "T side for `{}` at support {}", query, support
            );
            prop_assert_eq!(
                out.outcome.pair_result.count, solo.pair_result.count,
                "pair count for `{}` at support {}", query, support
            );
            prop_assert_eq!(
                &out.outcome.pair_result.pairs, &solo.pair_result.pairs,
                "pairs for `{}` at support {}", query, support
            );
        }

        // The group really did share work: at most one mining pass per
        // side (S and T), regardless of how many members ran.
        let sched = engine.scheduler_stats();
        prop_assert!(
            sched.mining_passes <= 2,
            "expected at most one pass per side, got {:?}", sched
        );
    }
}

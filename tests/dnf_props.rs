//! Property test for the DNF extension: the union semantics must match a
//! brute-force oracle for random disjunction shapes.

use cfq::constraints::{eval_all_one, eval_all_two};
use cfq::prelude::*;
use proptest::prelude::*;

fn pool() -> Vec<&'static str> {
    vec![
        "max(S.Price) <= 15 & freq(T)",
        "min(S.Price) >= 20 & freq(T)",
        "S.Type = T.Type",
        "S.Type disjoint T.Type",
        "max(S.Price) <= min(T.Price)",
        "sum(S.Price) <= sum(T.Price)",
        "count(S) <= 1 & freq(T)",
        "avg(S.Price) >= avg(T.Price)",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn dnf_union_matches_oracle(
        txs in prop::collection::vec(prop::collection::vec(0u32..5, 1..4), 4..12),
        prices in prop::collection::vec(1u32..40, 5),
        types in prop::collection::vec(0u32..2, 5),
        picks in prop::collection::vec(0usize..8, 1..4),
        min_support in 1u64..3,
    ) {
        let txs: Vec<Vec<ItemId>> =
            txs.into_iter().map(|t| t.into_iter().map(ItemId).collect()).collect();
        let db = TransactionDb::new(5, txs).unwrap();
        let mut b = CatalogBuilder::new(5);
        b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types.iter().map(|&t| ((b'a' + t as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();

        let pool = pool();
        let text = picks
            .iter()
            .map(|&i| pool[i])
            .collect::<Vec<_>>()
            .join(" | ");
        let dnf = parse_dnf(&text).unwrap();
        let qs = bind_dnf(&dnf, &catalog).unwrap();

        // Oracle.
        let all: Itemset = (0u32..5).collect();
        let frequent: Vec<Itemset> = all
            .all_nonempty_subsets()
            .into_iter()
            .filter(|s| db.support(s) >= min_support)
            .collect();
        let mut expected = 0u64;
        for s in &frequent {
            for t in &frequent {
                let any = qs.iter().any(|q| {
                    let s_one: Vec<OneVar> = q.one_var_for(Var::S).cloned().collect();
                    let t_one: Vec<OneVar> = q.one_var_for(Var::T).cloned().collect();
                    eval_all_one(&s_one, s, &catalog)
                        && eval_all_one(&t_one, t, &catalog)
                        && eval_all_two(&q.two_var, s, t, &catalog)
                });
                if any {
                    expected += 1;
                }
            }
        }

        let env = QueryEnv::new(&db, &catalog, min_support);
        let out = Optimizer::default().run_dnf(&qs, &env).unwrap();
        prop_assert_eq!(out.pair_result.count, expected, "`{}`", &text);
        prop_assert_eq!(out.pair_result.pairs.len() as u64, expected);
    }
}

//! Property tests for the static plan auditor (`cfq-audit`):
//!
//! 1. every plan the optimizer builds for a random CFQ conjunction audits
//!    clean — the production classifier and rewrite tables always agree
//!    with the auditor's independent re-derivation;
//! 2. the audit verdict means something: on every audit-clean plan, the
//!    full optimizer returns exactly the Apriori⁺ answer (the paper's
//!    semantics oracle — no pushing, everything checked at pair
//!    formation).

use cfq::prelude::*;
use proptest::prelude::*;

/// Constraint templates instantiated with random parameters, spanning all
/// strategy families (quasi-succinct, induced-weaker, J^k_max,
/// final-verify-only).
fn constraint_pool(p1: u32, p2: u32) -> Vec<String> {
    vec![
        format!("max(S.Price) <= {p1}"),
        format!("min(T.Price) >= {p2}"),
        format!("sum(S.Price) <= {}", p1 + p2),
        format!("min(S.Price) = {p2}"),
        "count(T) <= 3".to_string(),
        "S.Type = {a}".to_string(),
        "T.Type disjoint {b}".to_string(),
        "max(S.Price) <= min(T.Price)".to_string(),
        "min(S.Price) >= max(T.Price)".to_string(),
        "S.Type disjoint T.Type".to_string(),
        "S.Type = T.Type".to_string(),
        "S.Type subset T.Type".to_string(),
        "S.Type != T.Type".to_string(),
        "sum(S.Price) <= sum(T.Price)".to_string(),
        "sum(S.Price) >= sum(T.Price)".to_string(),
        "sum(S.Price) = sum(T.Price)".to_string(),
        "avg(S.Price) <= avg(T.Price)".to_string(),
        "avg(S.Price) >= min(T.Price)".to_string(),
        "count(S) < count(T)".to_string(),
        "count(S.Type) >= count(T.Type)".to_string(),
    ]
}

fn sorted_sets(v: &[(Itemset, u64)]) -> Vec<Itemset> {
    let mut out: Vec<Itemset> = v.iter().map(|(s, _)| s.clone()).collect();
    out.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_plans_audit_clean_and_audited_answers_match_naive(
        n_items in 3usize..7,
        txs in prop::collection::vec(
            prop::collection::vec(0u32..7, 1..5),
            4..14,
        ),
        prices in prop::collection::vec(1u32..50, 7),
        types in prop::collection::vec(0u32..3, 7),
        picks in prop::collection::vec(0usize..20, 1..4),
        p1 in 5u32..40,
        p2 in 1u32..25,
        min_support in 1u64..4,
    ) {
        let txs: Vec<Vec<ItemId>> = txs
            .into_iter()
            .map(|t| t.into_iter().map(|i| ItemId(i % n_items as u32)).collect())
            .collect();
        let db = TransactionDb::new(n_items, txs).unwrap();
        let mut b = CatalogBuilder::new(n_items);
        b.num_attr("Price", prices[..n_items].iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types[..n_items].iter().map(|&t| ((b'a' + t as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();

        let pool = constraint_pool(p1, p2);
        let srcs: Vec<&str> = picks.iter().map(|&i| pool[i].as_str()).collect();
        let text = srcs.join(" & ");

        // Property 1: the plan audits clean, for every strategy family.
        let auditor = Auditor::new(&catalog);
        let report = auditor.audit_source(&text).unwrap();
        prop_assert!(
            report.is_sound(),
            "`{}` should audit clean, got:\n{}", &text, report.render()
        );
        for opt in [Optimizer::apriori_plus(), Optimizer::cap_one_var()] {
            let r = Auditor::new(&catalog).with_optimizer(opt).audit_source(&text).unwrap();
            prop_assert!(r.is_sound(), "`{}` under {:?}:\n{}", &text, opt, r.render());
        }

        // Property 2: the audit-clean optimized plan returns exactly the
        // naive Apriori⁺ answer.
        let q = bind_query(&parse_query(&text).unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(&db, &catalog, min_support);
        let naive = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
        let optimized = Optimizer::default().evaluate(&q, &env).unwrap();
        prop_assert_eq!(
            optimized.pair_result.count, naive.pair_result.count,
            "pair count diverged for `{}`", &text
        );
        prop_assert_eq!(
            sorted_sets(&optimized.s_sets), sorted_sets(&naive.s_sets),
            "S-sets diverged for `{}`", &text
        );
        prop_assert_eq!(
            sorted_sets(&optimized.t_sets), sorted_sets(&naive.t_sets),
            "T-sets diverged for `{}`", &text
        );
    }
}

/// The audit is not vacuous: a classifier bug is caught. (The CLI relies
/// on this to refuse unsound plans; see `cfq-audit`'s unit tests for the
/// doctored-trace rejections.)
#[test]
fn audit_rejects_injected_classifier_bug() {
    let mut b = CatalogBuilder::new(4);
    b.num_attr("Price", vec![5.0, 10.0, 15.0, 20.0]).unwrap();
    let catalog = b.build();
    let report = Auditor::new(&catalog)
        .with_two_var_classifier(|c| {
            let mut cls = classify_two(c);
            cls.quasi_succinct = !cls.quasi_succinct;
            cls
        })
        .audit_source("max(S.Price) <= min(T.Price)")
        .unwrap();
    assert!(!report.is_sound());
    assert!(report.errors().any(|d| d.code == "misclassified"));
}

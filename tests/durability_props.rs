//! Crash-recovery and replication properties of the durable engine.
//!
//! The contract under test: an *acknowledged* `Engine::append` is on the
//! fsynced WAL before the epoch swap makes it visible, so killing the
//! process at any point and rebooting from the same directory recovers
//! exactly the acknowledged state — and a `--follow` replica tailing the
//! same WAL answers queries bit-equal to the primary.

use cfq::engine::wal::WalTailer;
use cfq::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh per-test directory without `Date`/randomness: pid + counter.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cfq-durability-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn catalog() -> Catalog {
    let mut b = CatalogBuilder::new(6);
    b.num_attr("Price", (0..6).map(|i| 10.0 * (i + 1) as f64).collect())
        .unwrap();
    b.build()
}

fn seed_db() -> TransactionDb {
    TransactionDb::from_u32(
        6,
        &[
            &[0, 1, 2, 3],
            &[0, 1, 2],
            &[1, 2, 3, 4],
            &[0, 2, 4],
            &[0, 1, 3, 5],
            &[2, 3, 4, 5],
            &[0, 1, 2, 3, 4],
            &[1, 3, 5],
        ],
    )
}

const QUERY: &str = "max(S.Price) <= 30 & min(T.Price) >= 40";

fn rows_to_db(rows: &[Vec<u32>]) -> TransactionDb {
    let cleaned: Vec<Vec<u32>> = rows
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.sort_unstable();
            r.dedup();
            r
        })
        .collect();
    let slices: Vec<&[u32]> = cleaned.iter().map(Vec::as_slice).collect();
    TransactionDb::from_u32(6, &slices)
}

/// The semantic payload of an answer: everything except scheduling
/// noise (`wait_us`) and provenance (which legitimately differs between
/// a cache-warm and a cache-cold engine).
type Answer = (u64, u64, Vec<(u32, u32)>, Vec<(Vec<u32>, u64)>, Vec<(Vec<u32>, u64)>);

fn answer(engine: &Arc<Engine>, min_support: u64) -> Answer {
    let out = engine
        .session()
        .query(QUERY)
        .min_support(min_support)
        .run()
        .unwrap();
    let r = QueryResponse::from_outcome(&out);
    (r.epoch, r.pair_count, r.pairs, r.s_sets, r.t_sets)
}

fn db_rows(db: &TransactionDb) -> Vec<Vec<u32>> {
    db.iter().map(|t| t.iter().map(|i| i.0).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random append sequences against a durable engine; "kill" it by
    /// dropping, optionally smear a torn (never-acknowledged) frame onto
    /// the WAL tail, reboot from the directory — the recovered engine
    /// must match a reference engine that never crashed, for every
    /// snapshot cadence.
    #[test]
    fn reboot_recovers_every_acknowledged_append(
        deltas in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..6, 1..5), 1..4),
            1..6,
        ),
        snapshot_every in 0u64..4,
        torn in prop::collection::vec(0u8..=255, 0..40),
        warm_queries in 0usize..3,
    ) {
        let dir = temp_dir("crash");
        let reference = Engine::new(seed_db(), catalog()).unwrap();
        let config = EngineConfig::builder()
            .wal_dir(&dir)
            .snapshot_every(snapshot_every)
            .build();
        let durable = Engine::with_config(seed_db(), catalog(), config.clone()).unwrap();

        // Some appends land on a query-warmed cache so snapshots carry
        // lattices; FUP keeps those exact across epochs.
        for _ in 0..warm_queries {
            let _ = answer(&durable, 2);
        }
        for rows in &deltas {
            let ack = durable.append(rows_to_db(rows)).unwrap();
            let want = reference.append(rows_to_db(rows)).unwrap();
            prop_assert_eq!(ack.epoch, want.epoch);
        }
        drop(durable);

        // A crash mid-write leaves a torn frame: an impossible length
        // prefix plus garbage. Recovery must discard it and nothing else.
        if !torn.is_empty() {
            use std::io::Write as _;
            let files = cfq::engine::wal::wal_files(&dir).unwrap();
            if let Some((_, path)) = files.last() {
                let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
                f.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
                f.write_all(&torn).unwrap();
            }
        }

        let recovered = Engine::with_config(seed_db(), catalog(), config).unwrap();
        prop_assert_eq!(recovered.epoch(), reference.epoch());
        prop_assert_eq!(db_rows(&recovered.db()), db_rows(&reference.db()));
        prop_assert_eq!(answer(&recovered, 2), answer(&reference, 2));

        // The reopened writer keeps accepting appends past the torn tail.
        let extra: &[&[u32]] = &[&[0, 3], &[1, 4, 5]];
        let ack = recovered.append(TransactionDb::from_u32(6, extra)).unwrap();
        let want = reference.append(TransactionDb::from_u32(6, extra)).unwrap();
        prop_assert_eq!(ack.epoch, want.epoch);
        prop_assert_eq!(answer(&recovered, 3), answer(&reference, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A snapshot taken after cache-warming queries makes the rebooted
/// engine answer with zero database scans — the warm-restart headline.
#[test]
fn snapshot_reboot_serves_warm() {
    let dir = temp_dir("warm");
    let config = EngineConfig::builder().wal_dir(&dir).snapshot_every(1).build();
    let engine = Engine::with_config(seed_db(), catalog(), config.clone()).unwrap();

    let cold = engine.session().query(QUERY).min_support(2).run().unwrap();
    assert!(cold.outcome.db_scans > 0, "first run must scan");
    // This append FUP-upgrades the cached lattices and (cadence 1)
    // snapshots them together with the new epoch's database.
    engine.append(TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5]])).unwrap();
    let stats = engine.durability_stats();
    assert_eq!(stats.snapshot_writes, 1);
    assert_eq!(stats.last_snapshot_epoch, 1);
    drop(engine);

    let rebooted = Engine::with_config(seed_db(), catalog(), config).unwrap();
    assert_eq!(rebooted.epoch(), 1);
    assert!(rebooted.cache_stats().entries >= 1, "snapshot lattices re-enter the cache");
    assert_eq!(rebooted.durability_stats().replayed_records, 0, "snapshot covers the WAL");
    let warm = rebooted.session().query(QUERY).min_support(2).run().unwrap();
    assert_eq!(warm.outcome.db_scans, 0, "rebooted engine serves from the recovered cache");
    // The recovered answer matches an engine that lived through the
    // append instead of rebooting.
    let reference = Engine::new(seed_db(), catalog()).unwrap();
    reference.append(TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5]])).unwrap();
    let live = reference.session().query(QUERY).min_support(2).run().unwrap();
    assert_eq!(warm.outcome.s_sets, live.outcome.s_sets);
    assert_eq!(warm.outcome.t_sets, live.outcome.t_sets);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--follow` replica recovered from the primary's WAL answers
/// bit-equal (modulo scheduler wait time) and stays bit-equal as it
/// tails later appends; writing to it is rejected.
#[test]
fn replica_answers_bit_equal_and_is_read_only() {
    let dir = temp_dir("replica");
    let primary_cfg = EngineConfig::builder().wal_dir(&dir).snapshot_every(0).build();
    let primary = Engine::with_config(seed_db(), catalog(), primary_cfg).unwrap();
    primary.append(TransactionDb::from_u32(6, &[&[0, 2, 4], &[1, 3, 5]])).unwrap();

    let follower_cfg = EngineConfig::builder().wal_dir(&dir).follow(true).build();
    let follower = Engine::with_config(seed_db(), catalog(), follower_cfg).unwrap();
    assert_eq!(follower.epoch(), primary.epoch());

    let bit_equal = |min_support: u64| {
        let respond = |e: &Arc<Engine>| {
            let out = e.session().query(QUERY).min_support(min_support).run().unwrap();
            let mut r = QueryResponse::from_outcome(&out);
            r.wait_us = 0; // scheduler wait is timing, not answer
            r
        };
        let p = respond(&primary);
        let f = respond(&follower);
        assert_eq!(p.to_json(), f.to_json(), "support {min_support}");
    };
    bit_equal(2);

    // The primary moves on; the replica tails the WAL and converges.
    primary.append(TransactionDb::from_u32(6, &[&[2, 3], &[0, 1, 5]])).unwrap();
    let mut tailer = WalTailer::new(&dir, follower.epoch() + 1);
    let mut rounds = 0;
    while follower.epoch() < primary.epoch() {
        for rec in tailer.poll().unwrap() {
            follower.replay_append(rec.delta).unwrap();
        }
        rounds += 1;
        assert!(rounds < 100, "replica never caught up");
    }
    assert_eq!(follower.epoch(), primary.epoch());
    bit_equal(2);
    bit_equal(3);
    assert!(follower.durability_stats().follow);

    let err = follower.append(TransactionDb::from_u32(6, &[&[0]])).unwrap_err();
    assert!(err.to_string().contains("read-only replica"), "{err}");
    let err = follower.snapshot_now().unwrap_err();
    assert!(err.to_string().contains("primary"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The builder covers every knob and `with_config` enforces the
/// follow/wal-dir coherence rule.
#[test]
fn builder_round_trips_and_validates() {
    let cfg = EngineConfig::builder()
        .cache_budget_bytes(1 << 20)
        .plan_cache_entries(7)
        .counting_threads(2)
        .trim(false)
        .backend(CountingBackend::Bitmap)
        .max_inflight_queries(3)
        .max_queued_queries(9)
        .batch_window_ms(50)
        .wal_dir("/tmp/cfq-nowhere")
        .snapshot_every(5)
        .follow(true)
        .build();
    assert_eq!(cfg.cache_budget_bytes, 1 << 20);
    assert_eq!(cfg.plan_cache_entries, 7);
    assert_eq!(cfg.counting_threads, 2);
    assert!(!cfg.trim);
    assert_eq!(cfg.backend, CountingBackend::Bitmap);
    assert_eq!(cfg.max_inflight_queries, 3);
    assert_eq!(cfg.max_queued_queries, 9);
    assert_eq!(cfg.batch_window.as_millis(), 50);
    assert_eq!(cfg.wal_dir.as_deref(), Some(std::path::Path::new("/tmp/cfq-nowhere")));
    assert_eq!(cfg.snapshot_every, 5);
    assert!(cfg.follow);

    let err = Engine::with_config(
        seed_db(),
        catalog(),
        EngineConfig::builder().follow(true).build(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("follow"), "{err}");
}

//! End-to-end runs of the queries the paper itself uses as examples,
//! including the §6.2 degenerate case.

use cfq::prelude::*;

fn market() -> (TransactionDb, Catalog) {
    let db = TransactionDb::from_u32(
        8,
        &[
            &[0, 1, 4, 5],
            &[0, 4, 5],
            &[1, 2, 6],
            &[2, 3, 6, 7],
            &[0, 1, 2, 4],
            &[3, 6, 7],
            &[0, 1, 4, 6],
            &[2, 3, 5, 7],
            &[0, 4],
            &[1, 2, 4, 6],
        ],
    );
    let mut b = CatalogBuilder::new(8);
    // Items 0-3 snacks ($2-$9), items 4-7 beers ($8-$30).
    b.num_attr("Price", vec![2.0, 5.0, 7.0, 9.0, 8.0, 12.0, 20.0, 30.0]).unwrap();
    b.cat_attr(
        "Type",
        &["Snacks", "Snacks", "Snacks", "Snacks", "Beers", "Beers", "Beers", "Beers"],
    )
    .unwrap();
    (db, b.build())
}

fn run(text: &str, min_support: u64) -> (ExecutionOutcome, ExecutionOutcome) {
    let (db, catalog) = market();
    let q = bind_query(&parse_query(text).unwrap(), &catalog).unwrap();
    let env = QueryEnv::new(&db, &catalog, min_support);
    (Optimizer::default().evaluate(&q, &env).unwrap(), apriori_plus(&q, &env))
}

/// §1: `{(S,T) | sum(S.Price) <= 100 & avg(T.Price) >= 200}`-style query,
/// with thresholds adapted to the toy prices.
#[test]
fn intro_query() {
    let (opt, base) = run("sum(S.Price) <= 10 & avg(T.Price) >= 15", 2);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    assert!(opt.pair_result.count > 0);
    let (db, catalog) = market();
    let _ = db;
    let price = catalog.attr("Price").unwrap();
    for (s, _) in &opt.s_sets {
        assert!(catalog.sum_num(price, s) <= 10.0);
    }
    for (t, _) in &opt.t_sets {
        assert!(catalog.avg_num(price, t).unwrap() >= 15.0);
    }
}

/// §1: the 2-var variant `sum(S.Price) <= avg(T.Price)`.
#[test]
fn intro_two_var_query() {
    let (opt, base) = run("sum(S.Price) <= avg(T.Price)", 2);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    assert!(opt.pair_result.count > 0);
}

/// §2: "pairs of frequent sets containing items of different types (each
/// set on its own of one type)".
#[test]
fn section2_different_types() {
    let (opt, base) =
        run("count(S.Type) = 1 & count(T.Type) = 1 & S.Type != T.Type", 2);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    assert!(opt.pair_result.count > 0);
    let (_, catalog) = market();
    let ty = catalog.attr("Type").unwrap();
    for &(si, ti) in &opt.pair_result.pairs {
        let (s, _) = &opt.s_sets[si as usize];
        let (t, _) = &opt.t_sets[ti as usize];
        assert_eq!(catalog.count_distinct(Some(ty), s), 1);
        assert_eq!(catalog.count_distinct(Some(ty), t), 1);
        assert_ne!(
            catalog.value_set(Some(ty), s),
            catalog.value_set(Some(ty), t)
        );
    }
}

/// §2: disjoint type sets.
#[test]
fn section2_disjoint_types() {
    let (opt, base) = run("S.Type disjoint T.Type", 2);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    let (_, catalog) = market();
    let ty = catalog.attr("Type").unwrap();
    for &(si, ti) in &opt.pair_result.pairs {
        let (s, _) = &opt.s_sets[si as usize];
        let (t, _) = &opt.t_sets[ti as usize];
        let sv = catalog.value_set(Some(ty), s);
        let tv = catalog.value_set(Some(ty), t);
        assert!(sv.iter().all(|v| !tv.contains(v)));
    }
}

/// §2: cheaper snacks leading to pricier beers.
#[test]
fn section2_snacks_to_beers() {
    let (opt, base) = run(
        "S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)",
        2,
    );
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    assert!(opt.pair_result.count > 0);
    // The optimizer must do strictly less counting than the baseline here:
    // every constraint in the query is pushable.
    assert!(
        opt.s_stats.support_counted + opt.t_stats.support_counted
            < base.s_stats.support_counted + base.t_stats.support_counted
    );
}

/// §6.2: when the 2-var constraint effectively points both variables at
/// the same lattice, the reduced 1-var constraints become trivial and the
/// optimizer degenerates to Apriori⁺ — same counting, same answer.
#[test]
fn section62_degenerate_same_lattice() {
    let (db, catalog) = market();
    let q = bind_query(&parse_query("min(S.Price) >= min(T.Price)").unwrap(), &catalog).unwrap();
    let env = QueryEnv::new(&db, &catalog, 2);
    let opt = Optimizer::default().evaluate(&q, &env).unwrap();
    let base = apriori_plus(&q, &env);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    // Both variables range over the same items with the same threshold:
    // the reduction is vacuous, so the counted sets are identical.
    assert_eq!(opt.s_stats.support_counted, base.s_stats.support_counted);
    assert_eq!(opt.t_stats.support_counted, base.t_stats.support_counted);
}

/// Also degenerate, via the reduction constants: min(CS.A) <= max(L1.A)
/// admits every candidate when S and T share the lattice.
#[test]
fn section62_min_le_min() {
    let (db, catalog) = market();
    let q = bind_query(&parse_query("min(S.Price) <= min(T.Price)").unwrap(), &catalog).unwrap();
    let env = QueryEnv::new(&db, &catalog, 2);
    let opt = Optimizer::default().evaluate(&q, &env).unwrap();
    let base = apriori_plus(&q, &env);
    assert_eq!(opt.pair_result.count, base.pair_result.count);
    assert_eq!(opt.s_stats.support_counted, base.s_stats.support_counted);
}

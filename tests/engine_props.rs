//! Property test for the session engine's incremental maintenance: for a
//! random Quest database, a random base/delta split, and a random support,
//! the answer served from a FUP-upgraded cache entry after `append` must
//! equal a full re-mine of the combined database — sets, supports, and
//! valid pairs alike — and must be served without a database scan.

use cfq::prelude::*;
use proptest::prelude::*;

const QUERIES: [&str; 3] = [
    "max(S.Price) <= 80 & min(T.Price) >= 80",
    "sum(S.Price) <= sum(T.Price)",
    "max(S.Price) <= min(T.Price)",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fup_upgraded_cache_matches_full_remine(
        seed in 0u64..1_000,
        cut_pct in 50usize..95,
        support in 2u64..6,
        qi in 0usize..QUERIES.len(),
    ) {
        let sc = ScenarioBuilder::new(QuestConfig { seed, ..QuestConfig::tiny() })
            .split_uniform_prices((10.0, 100.0), (40.0, 160.0))
            .unwrap();
        let rows: Vec<Vec<ItemId>> = sc.db.iter().map(|r| r.to_vec()).collect();
        let cut = (rows.len() * cut_pct / 100).max(1);
        let base = TransactionDb::new(sc.db.n_items(), rows[..cut].to_vec()).unwrap();
        let delta = TransactionDb::new(sc.db.n_items(), rows[cut..].to_vec()).unwrap();
        let combined = base.concat(&delta).unwrap();
        let query = QUERIES[qi];

        let engine = Engine::new(base, sc.catalog).unwrap();
        let session = engine.session();
        let run = || {
            session
                .query(query)
                .min_support(support)
                .s_universe(sc.s_items.clone())
                .t_universe(sc.t_items.clone())
                .run()
                .unwrap()
        };

        // Cold run populates the cache at epoch 0; the append FUP-upgrades
        // the cached lattices in place instead of discarding them.
        let _ = run();
        let info = engine.append(delta).unwrap();
        prop_assert_eq!(info.epoch, 1);

        let upgraded = run();
        prop_assert_eq!(upgraded.epoch, 1, "query `{}` should see the new epoch", query);
        prop_assert_eq!(
            upgraded.outcome.db_scans, 0,
            "query `{}` should answer from the upgraded cache without a scan", query
        );

        // Full re-mine of the combined database through the one-shot
        // optimizer. Equality of the `(set, support)` vectors checks the
        // upgraded support counts, not just set membership.
        let catalog = engine.catalog();
        let bound = bind_query(&parse_query(query).unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(&combined, &catalog, support)
            .with_s_universe(sc.s_items.clone())
            .with_t_universe(sc.t_items.clone());
        let fresh = Optimizer::default().evaluate(&bound, &env).unwrap();
        prop_assert_eq!(&upgraded.outcome.s_sets, &fresh.s_sets, "S side for `{}`", query);
        prop_assert_eq!(&upgraded.outcome.t_sets, &fresh.t_sets, "T side for `{}`", query);
        prop_assert_eq!(
            upgraded.outcome.pair_result.count, fresh.pair_result.count,
            "pair count for `{}`", query
        );
        prop_assert_eq!(
            &upgraded.outcome.pair_result.pairs, &fresh.pair_result.pairs,
            "pairs for `{}`", query
        );
    }
}

//! Empirical ccc-optimality audits (Definition 6 / Theorem 4) through the
//! public API, on Quest-generated data.

use cfq::core::ccc::audit_lattice;
use cfq::prelude::*;

fn setup() -> (TransactionDb, Catalog) {
    let quest = QuestConfig {
        n_items: 30,
        n_transactions: 200,
        avg_trans_len: 6.0,
        avg_pattern_len: 3.0,
        n_patterns: 15,
        ..QuestConfig::default()
    };
    let db = generate_transactions(&quest).unwrap();
    let mut b = CatalogBuilder::new(30);
    b.num_attr("Price", (0..30).map(|i| (i * 7 % 100) as f64).collect()).unwrap();
    let labels: Vec<String> = (0..30).map(|i| format!("T{}", i % 3)).collect();
    b.cat_attr("Type", &labels).unwrap();
    (db, b.build())
}

fn audited(src: &str, min_support: u64) -> cfq::core::ccc::CccReport {
    let (db, catalog) = setup();
    let q = bind_query(&parse_query(src).unwrap(), &catalog).unwrap();
    let one: Vec<OneVar> = q.one_var.clone();
    let form = SuccinctForm::compile(&one, &catalog);
    let mut run = LatticeRun::new(
        LatticeConfig {
            var: Var::S,
            universe: (0..30).map(ItemId).collect(),
            min_support,
            max_level: 0,
        },
        form,
        &catalog,
    );
    run.enable_audit_log();
    loop {
        let cands = run.next_candidates();
        if cands.is_empty() {
            break;
        }
        let counts = cfq::mining::TrieCounter.count(&db, &cands);
        run.absorb_counts(&counts);
    }
    audit_lattice(&run, &db, &catalog, &one, min_support)
}

use cfq::mining::SupportCounter;

/// Theorem 4 on real data: CAP is ccc-optimal for succinct 1-var
/// constraints — no invalid set counted, no infrequent-valid-subset
/// violation, constraint checks within the item budget.
#[test]
fn theorem4_on_quest_data() {
    for src in [
        "max(S.Price) <= 60",
        "min(S.Price) <= 20",
        "min(S.Price) >= 40 & max(S.Price) <= 90",
        "S.Type subset {T0, T1}",
        "S.Type intersects {T2}",
        "S.Type = {T1}",
        "min(S.Price) <= 30 & S.Type subset {T0, T1, T2}",
    ] {
        let report = audited(src, 4);
        assert!(
            report.is_ccc_optimal(),
            "`{src}`: violations={:?}, checks={}/{}",
            report.violations,
            report.constraint_checks,
            report.check_budget
        );
    }
}

/// Apriori⁺ is *not* ccc-optimal for most constraint sets: it counts
/// invalid sets (§6.2). Demonstrate on a selective constraint.
#[test]
fn apriori_plus_is_not_ccc_optimal() {
    let (db, catalog) = setup();
    let q = bind_query(&parse_query("max(S.Price) <= 40").unwrap(), &catalog).unwrap();
    let one: Vec<OneVar> = q.one_var.clone();
    // Apriori+ = empty form pushed (nothing), constraints only at the end.
    let mut run = LatticeRun::new(
        LatticeConfig {
            var: Var::S,
            universe: (0..30).map(ItemId).collect(),
            min_support: 4,
            max_level: 0,
        },
        SuccinctForm::default(),
        &catalog,
    );
    run.enable_audit_log();
    loop {
        let cands = run.next_candidates();
        if cands.is_empty() {
            break;
        }
        let counts = cfq::mining::TrieCounter.count(&db, &cands);
        run.absorb_counts(&counts);
    }
    let report = audit_lattice(&run, &db, &catalog, &one, 4);
    assert!(
        !report.violations.is_empty(),
        "Apriori+ should count invalid sets under a selective constraint"
    );
}

//! A broad deterministic regression matrix: every constraint shape of the
//! language × several support thresholds × every strategy configuration,
//! all compared pairwise on a fixed mid-size database. Slower than the unit
//! tests but deterministic — the net that catches cross-feature
//! regressions (e.g. a reduction change breaking the sequential executor).

use cfq::prelude::*;

fn database() -> (TransactionDb, Catalog) {
    // 12 items, 24 transactions with overlapping cliques so every level up
    // to ~5 is populated at low thresholds.
    let db = TransactionDb::from_u32(
        12,
        &[
            &[0, 1, 2, 3],
            &[0, 1, 2],
            &[1, 2, 3, 4],
            &[0, 2, 4, 6],
            &[0, 1, 3, 5],
            &[2, 3, 4, 5],
            &[0, 1, 2, 3, 4],
            &[1, 3, 5, 7],
            &[4, 5, 6, 7],
            &[5, 6, 7, 8],
            &[6, 7, 8, 9],
            &[4, 6, 8, 10],
            &[5, 7, 9, 11],
            &[8, 9, 10, 11],
            &[0, 4, 8],
            &[1, 5, 9],
            &[2, 6, 10],
            &[3, 7, 11],
            &[0, 1, 2, 3, 4, 5],
            &[6, 7, 8, 9, 10, 11],
            &[0, 2, 4, 6, 8, 10],
            &[1, 3, 5, 7, 9, 11],
            &[2, 3, 6, 7],
            &[4, 5, 8, 9],
        ],
    );
    let mut b = CatalogBuilder::new(12);
    b.num_attr(
        "Price",
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0],
    )
    .unwrap();
    b.cat_attr(
        "Type",
        &["a", "b", "c", "a", "b", "c", "a", "b", "c", "a", "b", "c"],
    )
    .unwrap();
    (db, b.build())
}

const QUERIES: &[&str] = &[
    // Pure 1-var, each strategy class.
    "max(S.Price) <= 30 & freq(T)",
    "min(S.Price) <= 10 & min(T.Price) >= 40",
    "S.Type subset {a, b} & T.Type intersects {c}",
    "sum(S.Price) <= 40 & avg(T.Price) >= 30",
    "count(S.Type) = 1 & count(T) <= 2",
    // Quasi-succinct 2-var, each Figure 2/3 row.
    "S.Type disjoint T.Type",
    "S.Type intersects T.Type",
    "S.Type subset T.Type",
    "S.Type notsubset T.Type",
    "S.Type superset T.Type",
    "S.Type notsuperset T.Type",
    "S.Type = T.Type",
    "S.Type != T.Type",
    "max(S.Price) <= min(T.Price)",
    "min(S.Price) <= min(T.Price)",
    "max(S.Price) <= max(T.Price)",
    "min(S.Price) <= max(T.Price)",
    "max(S.Price) >= min(T.Price)",
    "min(S.Price) > max(T.Price)",
    // Induced weaker / J^k_max classes.
    "avg(S.Price) <= min(T.Price)",
    "sum(S.Price) <= max(T.Price)",
    "avg(S.Price) <= avg(T.Price)",
    "sum(S.Price) <= sum(T.Price)",
    "sum(S.Price) >= sum(T.Price)",
    "sum(S.Price) = sum(T.Price)",
    "min(S.Price) <= sum(T.Price)",
    // Count extension.
    "count(S.Type) <= count(T.Type)",
    "count(S) >= count(T)",
    "count(S) = count(T.Type)",
    // Combinations across classes.
    "max(S.Price) <= 40 & S.Type = T.Type & sum(S.Price) <= sum(T.Price)",
    "min(S.Price) <= 15 & S.Type disjoint T.Type & avg(S.Price) <= avg(T.Price)",
    "count(S.Type) = 1 & max(S.Price) <= min(T.Price) & count(T) <= 3",
];

#[test]
fn full_strategy_matrix_agrees() {
    let (db, cat) = database();
    let strategies: [(&str, Optimizer); 5] = [
        ("apriori+", Optimizer::apriori_plus()),
        ("cap-1var", Optimizer::cap_one_var()),
        ("full", Optimizer::default()),
        ("sequential", Optimizer { dovetail: false, ..Optimizer::default() }),
        ("no-jkmax", Optimizer { use_jkmax: false, ..Optimizer::default() }),
    ];
    for src in QUERIES {
        let q = bind_query(&parse_query(src).unwrap(), &cat)
            .unwrap_or_else(|e| panic!("`{src}`: {e}"));
        for min_support in [2u64, 4, 6] {
            let env = QueryEnv::new(&db, &cat, min_support);
            let reference = strategies[0].1.evaluate(&q, &env).unwrap();
            for (name, opt) in &strategies[1..] {
                let out = opt.evaluate(&q, &env).unwrap();
                assert_eq!(
                    out.pair_result.count, reference.pair_result.count,
                    "`{src}` @ {min_support}: {name} pair count diverged"
                );
                assert_eq!(
                    out.s_sets, reference.s_sets,
                    "`{src}` @ {min_support}: {name} S-sets diverged"
                );
                assert_eq!(
                    out.t_sets, reference.t_sets,
                    "`{src}` @ {min_support}: {name} T-sets diverged"
                );
            }
        }
    }
}

/// The same matrix with asymmetric universes and thresholds (the split
/// domains the §7.1 experiments use).
#[test]
fn split_universe_matrix_agrees() {
    let (db, cat) = database();
    let s_universe: Vec<ItemId> = (0..6).map(ItemId).collect();
    let t_universe: Vec<ItemId> = (6..12).map(ItemId).collect();
    for src in QUERIES.iter().filter(|s| !s.contains("T.Type intersects")) {
        let q = bind_query(&parse_query(src).unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&db, &cat, 0)
            .with_s_universe(s_universe.clone())
            .with_t_universe(t_universe.clone())
            .with_supports(2, 3);
        let reference = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
        for opt in [
            Optimizer::default(),
            Optimizer { dovetail: false, ..Optimizer::default() },
        ] {
            let out = opt.evaluate(&q, &env).unwrap();
            assert_eq!(out.pair_result.count, reference.pair_result.count, "`{src}`");
            assert_eq!(out.s_sets, reference.s_sets, "`{src}`");
            assert_eq!(out.t_sets, reference.t_sets, "`{src}`");
        }
    }
}

/// Paper-scale smoke test (100k × 1000 Quest database, the real §7 setup).
/// Run explicitly: `cargo test --release -- --ignored paper_scale`.
#[test]
#[ignore = "paper-scale; minutes in release mode"]
fn paper_scale_smoke() {
    let sc = ScenarioBuilder::new(QuestConfig::default())
        .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
        .unwrap();
    let q = bind_query(
        &parse_query("max(S.Price) <= min(T.Price)").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, 400)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone())
        .with_counting_threads(0);
    let base = Optimizer::apriori_plus().evaluate(&q, &env).unwrap();
    let opt = Optimizer::default().evaluate(&q, &env).unwrap();
    assert_eq!(base.pair_result.count, opt.pair_result.count);
    assert!(
        opt.s_stats.support_counted < base.s_stats.support_counted,
        "optimizer must prune at paper scale"
    );
}

//! The compiled [`SuccinctForm`] must be *semantically exact*: a set passes
//! the form's four parts (allowed universe, required groups, residual
//! anti-monotone checks, post filters) iff it satisfies the original
//! conjunction. Soundness alone would keep answers correct (post filters
//! re-check), but exactness is what makes the CAP output filter equal to
//! generate-and-test — property-tested here over the whole 1-var language
//! on random catalogs.

use cfq::constraints::eval_all_one;
use cfq::prelude::*;
use proptest::prelude::*;

fn form_accepts(form: &SuccinctForm, s: &Itemset, catalog: &Catalog) -> bool {
    let in_allowed = match &form.allowed {
        None => true,
        Some(a) => s.iter().all(|i| a.binary_search(&i).is_ok()),
    };
    in_allowed
        && form.satisfies_required(s)
        && form.admits_candidate(s, catalog)
        && form.passes_post(s, catalog)
}

fn pool(p1: u32, p2: u32) -> Vec<String> {
    vec![
        format!("max(S.Price) <= {p1}"),
        format!("max(S.Price) < {p1}"),
        format!("max(S.Price) >= {p2}"),
        format!("min(S.Price) <= {p2}"),
        format!("min(S.Price) >= {p2}"),
        format!("min(S.Price) = {p2}"),
        format!("sum(S.Price) <= {}", p1 + p2),
        format!("sum(S.Price) >= {p1}"),
        format!("avg(S.Price) <= {p1}"),
        format!("avg(S.Price) >= {p2}"),
        format!("count(S) <= 2"),
        format!("count(S) = 2"),
        format!("count(S.Type) = 1"),
        "S.Type subset {a, b}".to_string(),
        "S.Type superset {a}".to_string(),
        "S.Type = {a}".to_string(),
        "S.Type != {a}".to_string(),
        "S.Type disjoint {c}".to_string(),
        "S.Type intersects {b, c}".to_string(),
        "S.Type notsuperset {a, b}".to_string(),
        "S.Type notsubset {a}".to_string(),
        format!("{p2} in S.Price"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn compiled_form_is_semantically_exact(
        prices in prop::collection::vec(1u32..40, 6),
        types in prop::collection::vec(0u32..3, 6),
        picks in prop::collection::vec(0usize..22, 1..4),
        p1 in 5u32..40,
        p2 in 1u32..25,
    ) {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types.iter().map(|&t| ((b'a' + t as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();

        let pool = pool(p1, p2);
        let srcs: Vec<&str> = picks.iter().map(|&i| pool[i].as_str()).collect();
        let text = srcs.join(" & ");
        let q = bind_query(&parse_query(&text).unwrap(), &catalog).unwrap();
        let form = SuccinctForm::compile(&q.one_var, &catalog);

        let all: Itemset = (0u32..6).collect();
        for s in all.all_nonempty_subsets() {
            let semantic = eval_all_one(&q.one_var, &s, &catalog);
            let compiled = form_accepts(&form, &s, &catalog);
            prop_assert_eq!(
                semantic, compiled,
                "`{}` disagrees on {} (semantic={}, form={})",
                &text, &s, semantic, compiled
            );
        }
    }
}

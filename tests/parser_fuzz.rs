//! Robustness: the query parser must never panic, whatever the input —
//! errors are typed, and anything that parses must round-trip through its
//! own display.

use cfq::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary strings: parse either succeeds or returns CfqError::Parse,
    /// never panics.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,80}") {
        let _ = parse_query(&input);
    }

    /// Token soup from the language's own alphabet: much higher chance of
    /// almost-valid inputs; still must not panic, and successes round-trip.
    #[test]
    fn token_soup_round_trips(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "S", "T", "min", "max", "sum", "avg", "count", "freq",
            "(", ")", "{", "}", ",", ".", "&", "and",
            "<=", ">=", "<", ">", "=", "!=",
            "subset", "disjoint", "intersects", "in", "|", "or",
            "Price", "Type", "Snacks", "10", "3.5", "0",
        ]),
        1..14,
    )) {
        let input = tokens.join(" ");
        if let Ok(q) = parse_query(&input) {
            let printed = q.to_string();
            let reparsed = parse_query(&printed)
                .unwrap_or_else(|e| panic!("display of `{input}` → `{printed}` failed: {e}"));
            prop_assert_eq!(q, reparsed);
        }
        // The DNF entry point must be equally panic-free and round-trip.
        if let Ok(d) = cfq::constraints::parse_dnf(&input) {
            let printed = d.to_string();
            let reparsed = cfq::constraints::parse_dnf(&printed)
                .unwrap_or_else(|e| panic!("DNF display `{input}` → `{printed}` failed: {e}"));
            prop_assert_eq!(d, reparsed);
        }
    }
}

// Structured round-trip over generated well-formed queries.
proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn generated_queries_round_trip(
        ops in prop::collection::vec(0usize..6, 1..4),
        aggs in prop::collection::vec(0usize..4, 1..4),
        vals in prop::collection::vec(0u32..1000, 1..4),
    ) {
        let op_names = ["<=", "<", ">=", ">", "=", "!="];
        let agg_names = ["min", "max", "sum", "avg"];
        let parts: Vec<String> = ops
            .iter()
            .zip(&aggs)
            .zip(&vals)
            .map(|((&o, &a), &v)| {
                format!("{}(S.Price) {} {}", agg_names[a], op_names[o], v)
            })
            .collect();
        let text = parts.join(" & ");
        let q = parse_query(&text).expect("well-formed");
        let reparsed = parse_query(&q.to_string()).expect("round-trip");
        prop_assert_eq!(q, reparsed);
    }
}

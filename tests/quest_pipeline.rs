//! End-to-end pipeline tests on Quest-generated data through the public
//! facade: generation → IO round-trip → scenario → optimizer vs baseline.

use cfq::datagen::io;
use cfq::prelude::*;

fn quest() -> QuestConfig {
    QuestConfig {
        n_items: 80,
        n_transactions: 800,
        avg_trans_len: 8.0,
        avg_pattern_len: 3.0,
        n_patterns: 50,
        ..QuestConfig::default()
    }
}

#[test]
fn dataset_io_roundtrip_through_files() {
    let db = generate_transactions(&quest()).unwrap();
    let dir = std::env::temp_dir().join("cfq_test_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("quest.txt");
    io::save_transactions(&db, &path).unwrap();
    let back = io::load_transactions(&path).unwrap();
    assert_eq!(back.len(), db.len());
    for i in (0..db.len()).step_by(97) {
        assert_eq!(back.transaction(i), db.transaction(i));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn fig8a_shape_on_small_data() {
    // The Figure 8(a) claim in miniature: the optimizer counts strictly
    // fewer sets than Apriori+, more so at lower overlap, with identical
    // answers.
    let mut counted = Vec::new();
    for v in [500.0, 900.0] {
        let sc = ScenarioBuilder::new(quest())
            .split_uniform_prices((400.0, 1000.0), (0.0, v))
            .unwrap();
        let q = bind_query(
            &parse_query("max(S.Price) <= min(T.Price)").unwrap(),
            &sc.catalog,
        )
        .unwrap();
        let env = QueryEnv::new(&sc.db, &sc.catalog, 6)
            .with_s_universe(sc.s_items.clone())
            .with_t_universe(sc.t_items.clone());
        let base = apriori_plus(&q, &env);
        let opt = Optimizer::default().evaluate(&q, &env).unwrap();
        assert_eq!(base.pair_result.count, opt.pair_result.count, "v={v}");
        let b = base.s_stats.support_counted + base.t_stats.support_counted;
        let o = opt.s_stats.support_counted + opt.t_stats.support_counted;
        assert!(o < b, "optimizer must count fewer sets at v={v}: {o} vs {b}");
        counted.push(o as f64 / b as f64);
    }
    assert!(
        counted[0] < counted[1],
        "lower overlap must prune more: {counted:?}"
    );
}

#[test]
fn fig8b_three_strategies_ordering() {
    let sc = ScenarioBuilder::new(quest()).typed_overlap(400.0, 600.0, 6, 40.0).unwrap();
    let q = bind_query(
        &parse_query("max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, 6);
    let base = apriori_plus(&q, &env);
    let one = Optimizer::cap_one_var().evaluate(&q, &env).unwrap();
    let full = Optimizer::default().evaluate(&q, &env).unwrap();
    assert_eq!(base.pair_result.count, one.pair_result.count);
    assert_eq!(base.pair_result.count, full.pair_result.count);
    let c = |o: &ExecutionOutcome| o.s_stats.support_counted + o.t_stats.support_counted;
    assert!(c(&one) < c(&base), "1-var pushing must help");
    assert!(c(&full) < c(&one), "2-var pushing must help further");
}

#[test]
fn jkmax_shape_on_long_patterns() {
    let quest = QuestConfig {
        n_items: 100,
        n_transactions: 600,
        avg_trans_len: 14.0,
        avg_pattern_len: 7.0,
        n_patterns: 30,
        ..QuestConfig::default()
    };
    let sc = ScenarioBuilder::new(quest).split_normal_prices(1000.0, 10.0, 400.0, 10.0).unwrap();
    let q = bind_query(&parse_query("sum(S.Price) <= sum(T.Price)").unwrap(), &sc.catalog)
        .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, 0)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone())
        .with_supports(3, 12);
    let jk = Optimizer::default().evaluate(&q, &env).unwrap();
    let no = Optimizer { use_jkmax: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
    assert_eq!(jk.pair_result.count, no.pair_result.count);
    assert!(
        jk.s_stats.support_counted < no.s_stats.support_counted,
        "J^k_max must prune S-side counting: {} vs {}",
        jk.s_stats.support_counted,
        no.s_stats.support_counted
    );
    // The V series must have sharpened below the trivial V¹.
    let (_, hist) = &jk.v_histories[0];
    assert!(hist.len() >= 2);
    assert!(hist.last().unwrap().1 < hist[0].1);
}

#[test]
fn dovetail_saves_scans() {
    let sc = ScenarioBuilder::new(quest())
        .split_uniform_prices((400.0, 1000.0), (0.0, 700.0))
        .unwrap();
    let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &sc.catalog)
        .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, 6)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone());
    let dove = Optimizer::default().evaluate(&q, &env).unwrap();
    let seq = Optimizer { dovetail: false, ..Optimizer::default() }.evaluate(&q, &env).unwrap();
    assert_eq!(dove.pair_result.count, seq.pair_result.count);
    assert!(
        dove.db_scans <= seq.db_scans,
        "dovetailing shares scans: {} vs {}",
        dove.db_scans,
        seq.db_scans
    );
}

#[test]
fn projection_to_type_domain_mines_value_sets() {
    // The §3 generality: T ranging over a domain other than Item. Project
    // the database onto the Type domain and mine frequent type-sets.
    let sc = ScenarioBuilder::new(quest()).typed_overlap(400.0, 600.0, 4, 50.0).unwrap();
    let ty = sc.catalog.attr("Type").unwrap();
    let (projected, keys) = sc.db.project(&sc.catalog, ty);
    assert_eq!(projected.n_items(), keys.len());
    let mut stats = WorkStats::new();
    let fs = apriori(&projected, &AprioriConfig::new(40), &mut stats);
    assert!(fs.total() > 0);
    // Every frequent type-set's support matches a direct count.
    for (s, sup) in fs.iter().take(20) {
        assert_eq!(projected.support(s), sup);
    }
}

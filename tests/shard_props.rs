//! Property tests for sharded counting (`cfq_mining::shard`) and the
//! `--shards N` axis end to end:
//!
//! * the complete lattice mined through the sharded substrate is
//!   bit-identical to the unsharded run — for every backend, shard
//!   count, trim setting, and random row shape — **including** the work
//!   accounting (scan count, rows/items touched, trim drops),
//! * optimizer answers are shard-invariant end to end across the
//!   paper's query shapes and both executors,
//! * the Partition phase-I local threshold is the floor of the
//!   proportional support and satisfies the SON pigeonhole bound
//!   `Σ(tᵢ−1) < s` on arbitrarily uneven shard sizes — while the buggy
//!   ceil-from-nominal-size variant violates completeness,
//! * edge cases hold: empty database, support = 1, and a universe
//!   smaller than the shard count.

use cfq::mining::partition::scaled_local_threshold;
use cfq::prelude::*;
use proptest::prelude::*;

fn build_db(rows: &[Vec<u32>], n_items: usize) -> TransactionDb {
    let rows: Vec<Vec<ItemId>> =
        rows.iter().map(|r| r.iter().map(|&i| ItemId(i)).collect()).collect();
    TransactionDb::new(n_items, rows).unwrap()
}

fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
    fs.iter().map(|(s, n)| (s.clone(), n)).collect()
}

fn mine(db: &TransactionDb, cfg: &AprioriConfig) -> (Vec<(Itemset, u64)>, WorkStats) {
    let mut stats = WorkStats::new();
    let fs = apriori(db, cfg, &mut stats);
    (collect(&fs), stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The tentpole invariant: sharded mining is bit-identical to
    /// unsharded — answers and accounting — for all four backends and
    /// shard counts 1, 2, 3, 8.
    #[test]
    fn sharded_lattices_are_bit_identical_to_unsharded(
        rows in prop::collection::vec(prop::collection::vec(0u32..10, 0..7), 1..40),
        mask in 1u16..1023,
        min_support in 1u64..5,
        trim_bit in 0u32..2,
    ) {
        let db = build_db(&rows, 10);
        let universe: Vec<ItemId> =
            (0..10u32).filter(|i| mask & (1 << i) != 0).map(ItemId).collect();
        for backend in CountingBackend::all() {
            let base_cfg = AprioriConfig::new(min_support)
                .with_universe(universe.clone())
                .with_trim(trim_bit == 1)
                .with_backend(backend);
            let (reference, ref_stats) = mine(&db, &base_cfg);
            for shards in [1usize, 2, 3, 8] {
                let (got, stats) = mine(&db, &base_cfg.clone().with_shards(shards));
                prop_assert_eq!(&reference, &got, "{} x{} diverged", backend, shards);
                prop_assert_eq!(
                    ref_stats.db_scans, stats.db_scans,
                    "{} x{} scan count", backend, shards
                );
                prop_assert_eq!(
                    ref_stats.scan.rows_scanned, stats.scan.rows_scanned,
                    "{} x{} rows scanned", backend, shards
                );
                prop_assert_eq!(
                    ref_stats.scan.items_scanned, stats.scan.items_scanned,
                    "{} x{} items scanned", backend, shards
                );
                prop_assert_eq!(
                    ref_stats.scan.trim_rows_dropped, stats.scan.trim_rows_dropped,
                    "{} x{} trim drops", backend, shards
                );
                prop_assert_eq!(
                    ref_stats.support_counted, stats.support_counted,
                    "{} x{} support counted", backend, shards
                );
            }
        }
    }

    /// The floored local threshold obeys the SON pigeonhole bound on
    /// arbitrary uneven splits: `Σᵢ (tᵢ − 1) < s`, so a set that is
    /// locally infrequent in every shard cannot be globally frequent.
    /// The ceil-from-nominal-size variant breaks the bound on splits
    /// with an undersized tail shard.
    #[test]
    fn floored_thresholds_are_sound_on_uneven_shards(
        sizes in prop::collection::vec(1usize..50, 1..10),
        min_support in 1u64..200,
    ) {
        let n: usize = sizes.iter().sum();
        prop_assume!(min_support <= n as u64);
        let slack: u64 = sizes
            .iter()
            .map(|&ni| scaled_local_threshold(min_support, ni, n) - 1)
            .sum();
        prop_assert!(
            slack < min_support,
            "sizes {:?}, s={}: slack {} >= s breaks SON completeness",
            sizes, min_support, slack
        );
        // Each floored threshold never exceeds the sound per-size ceil.
        for &ni in &sizes {
            let t = scaled_local_threshold(min_support, ni, n);
            let ceil = (min_support * ni as u64).div_ceil(n as u64).max(1);
            prop_assert!(t <= ceil, "floor {} above ceil {} for size {}", t, ceil, ni);
        }
    }

    /// The regression shape for the partition-threshold bugfix: with a
    /// deliberately undersized tail shard, the ceil threshold computed
    /// from the *nominal* uniform shard size can exceed what the tail
    /// may soundly require — the floored per-size threshold never does.
    #[test]
    fn nominal_ceil_overshoots_where_floor_does_not(
        head in 2usize..40,
        tail_deficit in 1usize..10,
        min_support in 2u64..100,
    ) {
        let tail = head.saturating_sub(tail_deficit).max(1);
        let n = head + tail;
        prop_assume!(min_support <= n as u64);
        let nominal = n.div_ceil(2);
        let bad = (min_support * nominal as u64).div_ceil(n as u64).max(1);
        let good = scaled_local_threshold(min_support, tail, n);
        // The buggy variant is never more permissive, and the two-shard
        // pigeonhole bound stays intact only for the floored pair.
        prop_assert!(good <= bad);
        let t_head = scaled_local_threshold(min_support, head, n);
        prop_assert!((t_head - 1) + (good - 1) < min_support);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// End to end: optimizer answers are shard-invariant for the
    /// paper's query shapes under both executors and all backends.
    #[test]
    fn optimizer_answers_are_shard_invariant(
        prices in prop::collection::vec(1u32..40, 6),
        types in prop::collection::vec(0u32..3, 6),
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 0..5), 4..20),
        min_support in 1u64..4,
        which in 0usize..4,
    ) {
        let queries = [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
            "avg(S.Price) <= avg(T.Price) & S.Type = T.Type",
        ];
        let db = build_db(&rows, 6);
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
        let labels: Vec<String> =
            types.iter().map(|&t| ((b'a' + (t % 3) as u8) as char).to_string()).collect();
        b.cat_attr("Type", &labels).unwrap();
        let catalog = b.build();
        let q = bind_query(&parse_query(queries[which]).unwrap(), &catalog).unwrap();
        for opt in [
            Optimizer::default(),
            Optimizer { dovetail: false, ..Optimizer::default() },
        ] {
            for backend in CountingBackend::all() {
                let reference = opt
                    .evaluate(&q, &QueryEnv::new(&db, &catalog, min_support).with_backend(backend))
                    .unwrap();
                for shards in [2usize, 3, 8] {
                    let env = QueryEnv::new(&db, &catalog, min_support)
                        .with_backend(backend)
                        .with_shards(shards);
                    let got = opt.evaluate(&q, &env).unwrap();
                    prop_assert_eq!(
                        &reference.s_sets, &got.s_sets,
                        "`{}` {} x{}", queries[which], backend, shards
                    );
                    prop_assert_eq!(
                        &reference.t_sets, &got.t_sets,
                        "`{}` {} x{}", queries[which], backend, shards
                    );
                    prop_assert_eq!(&reference.pair_result.pairs, &got.pair_result.pairs);
                    prop_assert_eq!(reference.pair_result.count, got.pair_result.count);
                    prop_assert_eq!(&reference.v_histories, &got.v_histories);
                    prop_assert_eq!(reference.db_scans, got.db_scans);
                }
            }
        }
    }
}

#[test]
fn empty_database_shards_to_nothing() {
    let db = TransactionDb::new(5, Vec::<Vec<ItemId>>::new()).unwrap();
    for backend in CountingBackend::all() {
        for shards in [1usize, 2, 8] {
            let cfg = AprioriConfig::new(1).with_backend(backend).with_shards(shards);
            let mut stats = WorkStats::new();
            let fs = apriori(&db, &cfg, &mut stats);
            assert_eq!(fs.total(), 0, "{backend} x{shards}: empty db must mine nothing");
        }
    }
}

#[test]
fn support_one_keeps_every_candidate_alive_across_shards() {
    // Support 1 is the worst case for per-shard trimming: every
    // candidate that occurs anywhere survives, so nothing may be lost
    // at any shard boundary.
    let rows: Vec<Vec<u32>> = (0..37u32)
        .map(|r| (0..6u32).filter(|i| (r + i) % (i + 2) == 0).collect())
        .collect();
    let db = build_db(&rows, 6);
    let (reference, _) = mine(&db, &AprioriConfig::new(1));
    assert!(!reference.is_empty());
    for backend in CountingBackend::all() {
        for shards in [2usize, 5, 16] {
            let (got, _) =
                mine(&db, &AprioriConfig::new(1).with_backend(backend).with_shards(shards));
            assert_eq!(reference, got, "{backend} x{shards} diverged at support=1");
        }
    }
}

#[test]
fn universe_smaller_than_shard_count_still_agrees() {
    // 2 live items, 8 requested shards over 5 rows: the shard count
    // clamps to the row count and the tiny universe must not confuse
    // per-shard trimming or vertical index builds.
    let db = build_db(&[vec![0, 1], vec![1, 2], vec![0, 2], vec![2, 3], vec![0, 1]], 4);
    let universe = vec![ItemId(0), ItemId(1)];
    for backend in CountingBackend::all() {
        let base = AprioriConfig::new(1).with_universe(universe.clone()).with_backend(backend);
        let (reference, _) = mine(&db, &base);
        for shards in [8usize, 16] {
            let (got, _) = mine(&db, &base.clone().with_shards(shards));
            assert_eq!(reference, got, "{backend} x{shards}: tiny universe diverged");
        }
    }
}

//! Edge cases and failure injection across the public API: degenerate
//! databases, unsatisfiable constraints, truncation limits, and hostile
//! configurations must degrade gracefully, never panic.

use cfq::prelude::*;

fn tiny() -> (TransactionDb, Catalog) {
    let db = TransactionDb::from_u32(3, &[&[0, 1], &[1, 2], &[0, 1, 2]]);
    let mut b = CatalogBuilder::new(3);
    b.num_attr("Price", vec![10.0, 20.0, 30.0]).unwrap();
    b.cat_attr("Type", &["a", "b", "a"]).unwrap();
    (db, b.build())
}

fn run(db: &TransactionDb, cat: &Catalog, src: &str, support: u64) -> ExecutionOutcome {
    let q = bind_query(&parse_query(src).unwrap(), cat).unwrap();
    Optimizer::default().evaluate(&q, &QueryEnv::new(db, cat, support)).unwrap()
}

#[test]
fn empty_database() {
    let db = TransactionDb::new(3, Vec::new()).unwrap();
    let cat = Catalog::empty(3);
    let out = run(&db, &cat, "S disjoint T", 1);
    assert_eq!(out.pair_result.count, 0);
    assert!(out.s_sets.is_empty());
}

#[test]
fn single_transaction_database() {
    let db = TransactionDb::from_u32(3, &[&[0, 1, 2]]);
    let cat = Catalog::empty(3);
    let out = run(&db, &cat, "S disjoint T", 1);
    // Every pair of disjoint non-empty subsets: sum over splits.
    assert!(out.pair_result.count > 0);
    let base = apriori_plus(
        &bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap(),
        &QueryEnv::new(&db, &cat, 1),
    );
    assert_eq!(out.pair_result.count, base.pair_result.count);
}

#[test]
fn unsatisfiable_one_var_constraint() {
    let (db, cat) = tiny();
    let out = run(&db, &cat, "max(S.Price) <= 0", 1);
    assert_eq!(out.pair_result.count, 0);
    assert!(out.s_sets.is_empty());
    // The lattice short-circuits: no S-side counting at all.
    assert_eq!(out.s_stats.support_counted, 0);
}

#[test]
fn unsatisfiable_two_var_constraint() {
    let (db, cat) = tiny();
    // All prices ≤ 30, so min(S) > max(T) can never hold with min ≥ 31.
    let out = run(&db, &cat, "min(S.Price) > max(T.Price) & min(S.Price) >= 31", 1);
    assert_eq!(out.pair_result.count, 0);
}

#[test]
fn support_above_database_size() {
    let (db, cat) = tiny();
    let out = run(&db, &cat, "S disjoint T", 100);
    assert_eq!(out.pair_result.count, 0);
    assert!(out.t_sets.is_empty());
}

#[test]
fn zero_support_is_treated_as_one() {
    // min_support 0 would make everything "frequent" even with support 0;
    // the lattice still only counts what occurs, and pair formation works.
    let (db, cat) = tiny();
    let out = run(&db, &cat, "S disjoint T", 0);
    let base = run(&db, &cat, "S disjoint T", 1);
    // Supports are ≥ 1 for any set that appears; counts coincide.
    assert_eq!(out.pair_result.count, base.pair_result.count);
}

#[test]
fn max_pairs_truncation_preserves_count() {
    let (db, cat) = tiny();
    let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
    let mut env = QueryEnv::new(&db, &cat, 1);
    env.max_pairs = Some(2);
    let out = Optimizer::default().evaluate(&q, &env).unwrap();
    assert!(out.pair_result.truncated);
    assert_eq!(out.pair_result.pairs.len(), 2);
    let full = Optimizer::default().evaluate(&q, &QueryEnv::new(&db, &cat, 1)).unwrap();
    assert_eq!(out.pair_result.count, full.pair_result.count);
    // Remapped indices stay in range.
    for &(si, ti) in &out.pair_result.pairs {
        assert!((si as usize) < out.s_sets.len());
        assert!((ti as usize) < out.t_sets.len());
    }
}

#[test]
fn disjoint_universes_with_distinct_supports() {
    let (db, cat) = tiny();
    let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)").unwrap(), &cat).unwrap();
    let env = QueryEnv::new(&db, &cat, 1)
        .with_s_universe(vec![ItemId(0)])
        .with_t_universe(vec![ItemId(2)])
        .with_supports(2, 1);
    let out = Optimizer::default().evaluate(&q, &env).unwrap();
    assert_eq!(out.pair_result.count, 1);
    assert_eq!(out.s_sets[0].0, [0u32].into());
    assert_eq!(out.t_sets[0].0, [2u32].into());
}

#[test]
fn empty_universe_side() {
    let (db, cat) = tiny();
    let q = bind_query(&parse_query("S disjoint T").unwrap(), &cat).unwrap();
    // A universe containing only an item that never occurs.
    let db2 = TransactionDb::from_u32(4, &[&[0, 1], &[1, 2], &[0, 1, 2]]);
    let cat2 = Catalog::empty(4);
    let q2 = bind_query(&parse_query("S disjoint T").unwrap(), &cat2).unwrap();
    let env = QueryEnv::new(&db2, &cat2, 1).with_s_universe(vec![ItemId(3)]);
    let out = Optimizer::default().evaluate(&q2, &env).unwrap();
    assert_eq!(out.pair_result.count, 0);
    let _ = (q, db, cat);
}

#[test]
fn all_strategies_on_degenerate_inputs() {
    let db = TransactionDb::from_u32(2, &[&[0], &[1], &[0, 1]]);
    let cat = Catalog::empty(2);
    let q = bind_query(&parse_query("S != T").unwrap(), &cat).unwrap();
    let env = QueryEnv::new(&db, &cat, 1);
    let counts: Vec<u64> = [
        Optimizer::default(),
        Optimizer::apriori_plus(),
        Optimizer::cap_one_var(),
        Optimizer { dovetail: false, ..Optimizer::default() },
    ]
    .iter()
    .map(|o| o.evaluate(&q, &env).unwrap().pair_result.count)
    .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    // {0},{1},{01}: ordered pairs with S ≠ T = 3 × 3 − 3 = 6.
    assert_eq!(counts[0], 6);
}

#[test]
fn rules_on_empty_outcome() {
    let (db, cat) = tiny();
    let out = run(&db, &cat, "max(S.Price) <= 0", 1);
    let rules = form_rules(&out, &db, &RuleConfig::default());
    assert!(rules.is_empty());
}

#[test]
fn catalog_less_queries() {
    // Bare-variable constraints work without any catalog attributes.
    let db = TransactionDb::from_u32(4, &[&[0, 1], &[2, 3], &[0, 1, 2, 3], &[1, 2]]);
    let cat = Catalog::empty(4);
    for src in ["S disjoint T", "S subset T", "count(S) <= 2", "S = T"] {
        let out = run(&db, &cat, src, 1);
        let base = apriori_plus(
            &bind_query(&parse_query(src).unwrap(), &cat).unwrap(),
            &QueryEnv::new(&db, &cat, 1),
        );
        assert_eq!(out.pair_result.count, base.pair_result.count, "`{src}`");
    }
}

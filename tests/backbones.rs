//! The frequency backbones and incremental maintenance, exercised through
//! the public facade on Quest data: every path must produce identical
//! frequent sets.

use cfq::mining::{fup_update, WorkStats};
use cfq::prelude::*;

fn quest(n: usize, seed: u64) -> TransactionDb {
    generate_transactions(&QuestConfig {
        n_items: 60,
        n_transactions: n,
        avg_trans_len: 7.0,
        avg_pattern_len: 3.0,
        n_patterns: 30,
        seed,
        ..QuestConfig::default()
    })
    .unwrap()
}

fn collect(fs: &FrequentSets) -> Vec<(Itemset, u64)> {
    fs.iter().map(|(s, n)| (s.clone(), n)).collect()
}

#[test]
fn three_backbones_agree_on_quest_data() {
    let db = quest(700, 1);
    let support = 10u64;
    let mut s1 = WorkStats::new();
    let a = apriori(&db, &AprioriConfig::new(support), &mut s1);
    let mut s2 = WorkStats::new();
    let f = fp_growth(&db, &FpGrowthConfig::new(support), &mut s2);
    let mut s3 = WorkStats::new();
    let p = partition_mine(
        &db,
        &PartitionConfig { min_support: support, n_partitions: 6, ..PartitionConfig::default() },
        &mut s3,
    );
    assert_eq!(collect(&a), collect(&f), "fp-growth diverged");
    assert_eq!(collect(&a), collect(&p), "partition diverged");
    assert!(a.total() > 30, "workload too trivial");
    // The scan economics the algorithms promise.
    assert_eq!(s1.db_scans as usize, s1.levels.len());
    assert_eq!(s2.db_scans, 2);
    assert_eq!(s3.db_scans, 2);
}

#[test]
fn fup_agrees_with_remine_on_quest_stream() {
    let old_db = quest(600, 2);
    let delta = quest(150, 3);
    let frac = 0.02;
    let abs_old = ((frac * old_db.len() as f64).ceil() as u64).max(1);
    let mut stats = WorkStats::new();
    let old = apriori(&old_db, &AprioriConfig::new(abs_old), &mut stats);

    let mut upd_stats = WorkStats::new();
    let updated = fup_update(&old, &old_db, &delta, frac, &mut upd_stats).unwrap();

    let mut rows: Vec<Vec<ItemId>> = old_db.iter().map(|t| t.to_vec()).collect();
    rows.extend(delta.iter().map(|t| t.to_vec()));
    let combined = TransactionDb::new(old_db.n_items(), rows).unwrap();
    let abs_new = ((frac * combined.len() as f64).ceil() as u64).max(1);
    let mut s = WorkStats::new();
    let expected = apriori(&combined, &AprioriConfig::new(abs_new), &mut s);

    assert_eq!(collect(&updated.frequent), collect(&expected));
    assert_eq!(updated.min_support, abs_new);
    // FUP's point: far fewer old-db scans than a full remine.
    assert!(
        upd_stats.db_scans <= s.db_scans,
        "FUP rescanned more than a remine: {} vs {}",
        upd_stats.db_scans,
        s.db_scans
    );
}

#[test]
fn maximal_and_closed_condense_quest_results() {
    let db = quest(500, 4);
    let mut stats = WorkStats::new();
    let fs = apriori(&db, &AprioriConfig::new(8), &mut stats);
    let maximal = fs.maximal();
    let closed = fs.closed();
    assert!(maximal.len() < fs.total());
    assert!(closed.len() <= fs.total());
    assert!(maximal.len() <= closed.len(), "maximal ⊆ closed in count");
    // Every frequent set is covered by a maximal superset and its support
    // is reconstructible from the closed sets.
    for (s, sup) in fs.iter() {
        assert!(maximal.iter().any(|m| s.is_subset_of(m)));
        let rec = closed
            .iter()
            .filter(|(c, _)| s.is_subset_of(c))
            .map(|&(_, n)| n)
            .max()
            .unwrap();
        assert_eq!(rec, sup);
    }
}

//! Property tests for per-level database trimming (`cfq_mining::trim`):
//!
//! * support counts on a trimmed database agree with full-database counts
//!   for all four counters, for every candidate whose items are live and
//!   whose length is at least the trim's `min_len` (the trim invariant),
//! * row provenance maps each surviving row back to its source row,
//! * trimming composes (trim of a trim with a smaller live set is exact),
//! * optimizer answers are identical with `--trim on|off` across the
//!   dovetailed and sequential executors, including the `J^k_max` path.

use cfq::mining::{
    trim_db, LiveSet, NaiveCounter, ParallelTrieCounter, SupportCounter, TidsetIndex, TrieCounter,
    VerticalCounter,
};
use cfq::prelude::*;
use proptest::prelude::*;

fn build_db(rows: &[Vec<u32>], n_items: usize) -> TransactionDb {
    let rows: Vec<Vec<ItemId>> =
        rows.iter().map(|r| r.iter().map(|&i| ItemId(i)).collect()).collect();
    TransactionDb::new(n_items, rows).unwrap()
}

fn build_catalog(prices: &[u32], types: &[u32]) -> Catalog {
    let n = prices.len();
    let mut b = CatalogBuilder::new(n);
    b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
    let labels: Vec<String> =
        types[..n].iter().map(|&t| ((b'a' + (t % 3) as u8) as char).to_string()).collect();
    b.cat_attr("Type", &labels).unwrap();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The trim invariant: counts over the trimmed database equal counts
    /// over the full database, for all four counters.
    #[test]
    fn trimmed_counts_agree_with_full(
        rows in prop::collection::vec(prop::collection::vec(0u32..8, 0..6), 1..24),
        mask in 1u16..255,
        k in 2usize..4,
    ) {
        let db = build_db(&rows, 8);
        // Candidates: every k-subset of the masked item universe. The live
        // set is exactly their union, as in the levelwise miner.
        let universe: Itemset = (0..8u32).filter(|i| mask & (1 << i) != 0).collect();
        let cands: Vec<Itemset> =
            universe.all_nonempty_subsets().into_iter().filter(|s| s.len() == k).collect();
        prop_assume!(!cands.is_empty());
        let live = LiveSet::from_items(8, cands.iter().flat_map(|c| c.iter()));
        let trimmed = trim_db(&db, &live, k);

        let full = TrieCounter.count(&db, &cands);
        prop_assert_eq!(&full, &NaiveCounter.count(&trimmed.db, &cands));
        prop_assert_eq!(&full, &TrieCounter.count(&trimmed.db, &cands));
        prop_assert_eq!(&full, &ParallelTrieCounter::default().count(&trimmed.db, &cands));
        prop_assert_eq!(
            &full,
            &ParallelTrieCounter { threads: 3 }.count(&trimmed.db, &cands)
        );
        let index = TidsetIndex::build(&trimmed.db);
        prop_assert_eq!(&full, &VerticalCounter::new(&index).count(&trimmed.db, &cands));

        // Accounting adds up.
        prop_assert_eq!(
            trimmed.rows_dropped as usize,
            db.len() - trimmed.db.len()
        );
        prop_assert_eq!(
            trimmed.items_dropped as usize,
            db.total_items() - trimmed.db.total_items()
        );
    }

    /// Provenance maps each surviving row to its source row, and a second
    /// trim with a smaller live set composes exactly.
    #[test]
    fn provenance_and_composition(
        rows in prop::collection::vec(prop::collection::vec(0u32..8, 0..6), 1..24),
        mask1 in 1u16..255,
        mask2 in 1u16..255,
    ) {
        let db = build_db(&rows, 8);
        let items_of = |m: u16| (0..8u32).filter(move |i| m & (1 << i) != 0).map(ItemId);
        let live1 = LiveSet::from_items(8, items_of(mask1));
        // Second live set must be a subset of the first (monotone shrink).
        let live2 = LiveSet::from_items(8, items_of(mask1 & mask2));

        let t1 = trim_db(&db, &live1, 1);
        prop_assert_eq!(t1.provenance.len(), t1.db.len());
        for (row, &src) in t1.db.iter().zip(&t1.provenance) {
            let expect: Vec<ItemId> = db
                .transaction(src as usize)
                .iter()
                .copied()
                .filter(|&i| live1.contains(i))
                .collect();
            prop_assert_eq!(row, expect.as_slice());
        }

        // trim(trim(db, live1), live2) == trim(db, live2) when live2 ⊆ live1,
        // with provenance composing through the first pass.
        let t12 = trim_db(&t1.db, &live2, 1);
        let direct = trim_db(&db, &live2, 1);
        prop_assert_eq!(t12.db.iter().collect::<Vec<_>>(), direct.db.iter().collect::<Vec<_>>());
        let composed: Vec<u32> =
            t12.provenance.iter().map(|&r| t1.provenance[r as usize]).collect();
        prop_assert_eq!(composed, direct.provenance);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Optimizer answers are byte-identical with trimming on and off, for
    /// both the dovetailed and sequential executors. The `sum <= sum`
    /// query exercises the dovetail + `J^k_max` pruning path (its `V^k`
    /// series must not be disturbed by trimming).
    #[test]
    fn optimizer_answers_identical_with_trim_on_or_off(
        prices in prop::collection::vec(1u32..40, 6),
        types in prop::collection::vec(0u32..3, 6),
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 0..5), 4..20),
        min_support in 1u64..4,
        which in 0usize..4,
    ) {
        let queries = [
            "sum(S.Price) <= sum(T.Price)",
            "max(S.Price) <= min(T.Price)",
            "S.Type disjoint T.Type",
            "avg(S.Price) <= avg(T.Price) & S.Type = T.Type",
        ];
        let db = build_db(&rows, 6);
        let catalog = build_catalog(&prices, &types);
        let q = bind_query(&parse_query(queries[which]).unwrap(), &catalog).unwrap();
        for opt in [
            Optimizer::default(),
            Optimizer { dovetail: false, ..Optimizer::default() },
        ] {
            let on = opt.evaluate(&q, &QueryEnv::new(&db, &catalog, min_support).with_trim(true)).unwrap();
            let off = opt.evaluate(&q, &QueryEnv::new(&db, &catalog, min_support).with_trim(false)).unwrap();
            prop_assert_eq!(&on.s_sets, &off.s_sets, "`{}`", queries[which]);
            prop_assert_eq!(&on.t_sets, &off.t_sets, "`{}`", queries[which]);
            prop_assert_eq!(&on.pair_result.pairs, &off.pair_result.pairs);
            prop_assert_eq!(on.pair_result.count, off.pair_result.count);
            prop_assert_eq!(&on.v_histories, &off.v_histories);
            prop_assert_eq!(on.db_scans, off.db_scans);
            // Trimming never *increases* scan volume, and off means off.
            prop_assert!(on.scan.items_scanned <= off.scan.items_scanned);
            prop_assert_eq!(off.scan.trim_passes, 0);
        }
    }
}

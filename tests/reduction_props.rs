//! Property tests for the paper's formal machinery:
//!
//! * quasi-succinct reduction soundness on random catalogs (Theorem 2/3),
//! * induced-weaker implication (Lemma 4 / Figure 4),
//! * `J^k`/`V^k` bound soundness and monotonicity on random
//!   downward-closed families (Lemmas 5–7).

use cfq::constraints::{
    eval_one, eval_two, induce_weaker, reduce_quasi_succinct, OneVar,
};
use cfq::core::{j_stats, v_bound};
use cfq::prelude::*;
use proptest::prelude::*;

fn build_catalog(prices: &[u32], types: &[u32]) -> Catalog {
    let n = prices.len();
    let mut b = CatalogBuilder::new(n);
    b.num_attr("Price", prices.iter().map(|&p| p as f64).collect()).unwrap();
    let labels: Vec<String> =
        types[..n].iter().map(|&t| ((b'a' + (t % 4) as u8) as char).to_string()).collect();
    b.cat_attr("Type", &labels).unwrap();
    b.build()
}

fn two(text: &str, catalog: &Catalog) -> TwoVar {
    bind_query(&parse_query(text).unwrap(), catalog).unwrap().two_var.remove(0)
}

const QS_CONSTRAINTS: &[&str] = &[
    "S.Type disjoint T.Type",
    "S.Type intersects T.Type",
    "S.Type subset T.Type",
    "S.Type notsubset T.Type",
    "S.Type superset T.Type",
    "S.Type notsuperset T.Type",
    "S.Type = T.Type",
    "max(S.Price) <= min(T.Price)",
    "min(S.Price) <= min(T.Price)",
    "max(S.Price) <= max(T.Price)",
    "min(S.Price) <= max(T.Price)",
    "max(S.Price) >= min(T.Price)",
    "min(S.Price) > max(T.Price)",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Reduction soundness: no valid set (one with a frequent partner
    /// satisfying the constraint) is ever pruned by the reduced conditions.
    #[test]
    fn reduction_never_prunes_valid_sets(
        prices in prop::collection::vec(1u32..30, 6),
        types in prop::collection::vec(0u32..4, 6),
        l1s_mask in 1u8..63,
        l1t_mask in 1u8..63,
        which in 0usize..13,
    ) {
        let catalog = build_catalog(&prices, &types);
        let c = two(QS_CONSTRAINTS[which], &catalog);
        let to_items = |mask: u8| -> Vec<ItemId> {
            (0..6u32).filter(|i| mask & (1 << i) != 0).map(ItemId).collect()
        };
        let l1s = to_items(l1s_mask);
        let l1t = to_items(l1t_mask);
        let r = reduce_quasi_succinct(&c, &l1s, &l1t, &catalog).expect("QS constraint");

        // "Frequent" families: all non-empty subsets of the L1 closures.
        let s_closure: Itemset = l1s.iter().copied().collect();
        let t_closure: Itemset = l1t.iter().copied().collect();
        let freq_s = s_closure.all_nonempty_subsets();
        let freq_t = t_closure.all_nonempty_subsets();
        let all: Itemset = (0u32..6).collect();

        for cs in all.all_nonempty_subsets() {
            let valid = freq_t.iter().any(|t| eval_two(&c, &cs, t, &catalog));
            if valid {
                for cond in &r.s_conds {
                    prop_assert!(
                        eval_one(cond, &cs, &catalog),
                        "S-condition pruned valid {} for `{}`", cs, QS_CONSTRAINTS[which]
                    );
                }
            }
        }
        for ct in all.all_nonempty_subsets() {
            let valid = freq_s.iter().any(|s| eval_two(&c, s, &ct, &catalog));
            if valid {
                for cond in &r.t_conds {
                    prop_assert!(
                        eval_one(cond, &ct, &catalog),
                        "T-condition pruned valid {} for `{}`", ct, QS_CONSTRAINTS[which]
                    );
                }
            }
        }
    }

    /// Figure 4: the induced constraint is implied by the original on every
    /// pair of non-empty sets.
    #[test]
    fn induced_weaker_is_implied(
        prices in prop::collection::vec(1u32..30, 5),
        which in 0usize..8,
    ) {
        let catalog = build_catalog(&prices, &[0, 1, 2, 3, 0]);
        let srcs = [
            "avg(S.Price) <= min(T.Price)",
            "sum(S.Price) <= max(T.Price)",
            "avg(S.Price) <= avg(T.Price)",
            "sum(S.Price) <= avg(T.Price)",
            "avg(S.Price) >= avg(T.Price)",
            "avg(S.Price) >= sum(T.Price)",
            "sum(S.Price) = sum(T.Price)",
            "avg(S.Price) = max(T.Price)",
        ];
        let c = two(srcs[which], &catalog);
        let weaker = induce_weaker(&c, &catalog);
        let all: Itemset = (0u32..5).collect();
        for s in all.all_nonempty_subsets() {
            for t in all.all_nonempty_subsets() {
                if eval_two(&c, &s, &t, &catalog) {
                    for w in &weaker {
                        prop_assert!(
                            eval_two(w, &s, &t, &catalog),
                            "`{}` did not imply its weakening at ({}, {})",
                            srcs[which], s, t
                        );
                    }
                }
            }
        }
    }

    /// Lemmas 5–7 on random downward-closed families: `V^k` bounds the true
    /// max sum at sizes ≥ k, and the J bound never under-estimates the
    /// largest set.
    #[test]
    fn v_bound_sound_on_random_families(
        prices in prop::collection::vec(0u32..20, 8),
        maximal in prop::collection::vec(1u8..255, 1..4),
    ) {
        let catalog = build_catalog(&prices, &[0; 8]);
        let attr = catalog.attr("Price").unwrap();
        // Downward closure of the maximal sets.
        let mut family: Vec<Itemset> = Vec::new();
        for &mask in &maximal {
            let m: Itemset = (0..8u32).filter(|i| mask & (1 << i) != 0).collect();
            family.extend(m.all_nonempty_subsets());
        }
        family.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
        family.dedup();
        let max_len = family.iter().map(|s| s.len()).max().unwrap();

        for k in 2..=max_len.min(4) {
            let level: Vec<Itemset> =
                family.iter().filter(|s| s.len() == k).cloned().collect();
            if level.is_empty() {
                continue;
            }
            let stats = j_stats(&level, k).unwrap();
            prop_assert!(
                k as u64 + stats.j_max >= max_len as u64,
                "J bound {} + {} below true max {}", k, stats.j_max, max_len
            );
            let v = v_bound(&level, k, attr, &catalog).unwrap();
            let true_max = family
                .iter()
                .filter(|s| s.len() >= k)
                .map(|s| catalog.sum_num(attr, s))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                v >= true_max - 1e-9,
                "V^{} = {} below true max {}", k, v, true_max
            );
        }
    }
}

/// Deterministic spot-check that reduction output types are the expected
/// induced conditions (Figure 2 row 1 / Figure 3 row 3).
#[test]
fn reduction_shapes() {
    let catalog = build_catalog(&[10, 20, 30, 40], &[0, 1, 0, 1]);
    let l1: Vec<ItemId> = (0..4).map(ItemId).collect();
    let r = reduce_quasi_succinct(
        &two("S.Type disjoint T.Type", &catalog),
        &l1,
        &l1,
        &catalog,
    )
    .unwrap();
    assert!(matches!(r.s_conds[0], OneVar::Domain { rel: cfq::constraints::SetRel::NotSuperset, .. }));
    let r = reduce_quasi_succinct(
        &two("max(S.Price) <= min(T.Price)", &catalog),
        &l1,
        &l1,
        &catalog,
    )
    .unwrap();
    assert!(matches!(
        r.s_conds[0],
        OneVar::AggCmp { agg: Agg::Max, op: CmpOp::Le, value, .. } if value == 40.0
    ));
    assert!(matches!(
        r.t_conds[0],
        OneVar::AggCmp { agg: Agg::Min, op: CmpOp::Ge, value, .. } if value == 10.0
    ));
}

//! Property tests for the itemset algebra — the foundation everything
//! else trusts.

use cfq::prelude::*;
use proptest::prelude::*;

fn arb_itemset() -> impl Strategy<Value = Itemset> {
    prop::collection::vec(0u32..24, 0..12).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn construction_is_sorted_unique(v in prop::collection::vec(0u32..100, 0..30)) {
        let s: Itemset = v.iter().copied().collect();
        let slice = s.as_slice();
        prop_assert!(slice.windows(2).all(|w| w[0] < w[1]));
        for &x in &v {
            prop_assert!(s.contains(ItemId(x)));
        }
    }

    #[test]
    fn union_intersection_difference_laws(a in arb_itemset(), b in arb_itemset()) {
        let u = a.union(&b);
        let i = a.intersection(&b);
        let d = a.difference(&b);
        // |A ∪ B| = |A| + |B| - |A ∩ B|.
        prop_assert_eq!(u.len(), a.len() + b.len() - i.len());
        // A = (A \ B) ∪ (A ∩ B).
        prop_assert_eq!(d.union(&i), a.clone());
        // Subset relations.
        prop_assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        prop_assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
        prop_assert!(!d.intersects(&b));
        // Commutativity.
        prop_assert_eq!(u, b.union(&a));
        prop_assert_eq!(i, b.intersection(&a));
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_itemset(), b in arb_itemset()) {
        prop_assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn with_item_and_without_index(a in arb_itemset(), x in 0u32..24) {
        let w = a.with_item(ItemId(x));
        prop_assert!(w.contains(ItemId(x)));
        prop_assert!(a.is_subset_of(&w));
        if !a.is_empty() {
            let removed = a.without_index(0);
            prop_assert_eq!(removed.len(), a.len() - 1);
            prop_assert!(removed.is_subset_of(&a));
        }
    }

    #[test]
    fn apriori_join_produces_supersets(a in arb_itemset(), b in arb_itemset()) {
        if let Some(j) = a.apriori_join(&b) {
            prop_assert_eq!(j.len(), a.len() + 1);
            prop_assert!(a.is_subset_of(&j));
            prop_assert!(b.is_subset_of(&j));
        }
    }

    #[test]
    fn subsets_of_size_counts(v in prop::collection::vec(0u32..16, 0..9), k in 0usize..10) {
        let s: Itemset = v.into_iter().collect();
        let n = s.len();
        let expected = if k > n {
            0
        } else {
            // C(n, k)
            let mut c = 1u64;
            for i in 0..k as u64 {
                c = c * (n as u64 - i) / (i + 1);
            }
            c as usize
        };
        let subs: Vec<Itemset> = s.subsets_of_size(k).collect();
        prop_assert_eq!(subs.len(), expected);
        for sub in &subs {
            prop_assert_eq!(sub.len(), k);
            prop_assert!(sub.is_subset_of(&s));
        }
        // All distinct.
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), expected);
    }

    #[test]
    fn support_monotone_under_subsets(
        txs in prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..12),
        set in prop::collection::vec(0u32..10, 1..4),
    ) {
        let txs: Vec<Vec<ItemId>> =
            txs.into_iter().map(|t| t.into_iter().map(ItemId).collect()).collect();
        let db = TransactionDb::new(10, txs).unwrap();
        let s: Itemset = set.into_iter().collect();
        let sup = db.support(&s);
        s.for_each_len_minus_one(|sub| {
            assert!(db.support(sub) >= sup, "support not anti-monotone");
        });
    }
}
